package nn

import (
	"fmt"

	"misusedetect/internal/tensor"
)

// Idle-stream compaction support: a dormant LSTM stream is fully
// described by its recurrent state (H, C) plus whether it has consumed
// at least one action. Everything else a live StreamState carries —
// step scratch, logits and probability buffers — is derived per step
// and can be dropped while a session is idle, then rebuilt on demand.
//
// The byte-identity argument: Observe computes the next prediction as
// softmax(dense(H')) where H' is the post-step hidden state, and reads
// the *previous* prediction for the observed action's likelihood. So a
// stream rebuilt from (H, C) with its prediction recomputed through the
// very same ForwardInto+Softmax kernels continues with exactly the
// likelihoods the uninterrupted stream would have returned.

const (
	// floatBytes is the accounting size of one float64 slice element.
	floatBytes = 8
	// streamStructOverhead approximates the fixed per-stream cost: the
	// StreamState, State, and StreamScratch structs plus slice headers.
	streamStructOverhead = 160
)

// MemSize estimates the resident heap bytes of this stream's
// session-local state (recurrent state plus scratch buffers), excluding
// the shared network weights. Implements the scorer.MemSizer seam — via
// lm's assertion, like the Stream contract itself.
func (s *StreamState) MemSize() int {
	hidden := s.net.cfg.HiddenSize
	n := 2 * hidden // state.H + state.C
	if s.scratch != nil {
		// StepScratch: z (4h) + i,f,o,g (h each) + h,c double buffers.
		n += 10 * hidden
		n += len(s.scratch.logits) + len(s.scratch.probs)
	} else if s.nextProbs != nil {
		n += len(s.nextProbs)
	}
	return n*floatBytes + streamStructOverhead
}

// SnapshotState surrenders the stream's recurrent state for compaction:
// the hidden and cell vectors (transferred, not copied — the stream must
// not be used afterwards) and whether the stream has consumed at least
// one action (primed). An unprimed stream has no prediction yet, so
// rehydration must not fabricate one.
func (s *StreamState) SnapshotState() (h, c tensor.Vector, primed bool) {
	return s.state.H, s.state.C, s.nextProbs != nil
}

// RestoreStream rebuilds a live preallocated stream from a snapshot
// taken by SnapshotState on a stream of this network. The next-action
// prediction is recomputed from the hidden state through the same
// dense+softmax kernels Observe uses, so the restored stream's scores
// are byte-identical to the uninterrupted stream's.
func (n *LanguageNetwork) RestoreStream(h, c tensor.Vector, primed bool) (*StreamState, error) {
	if len(h) != n.cfg.HiddenSize || len(c) != n.cfg.HiddenSize {
		return nil, fmt.Errorf("nn: restore stream: state size %d/%d, want %d", len(h), len(c), n.cfg.HiddenSize)
	}
	s := &StreamState{
		net:     n,
		state:   &State{H: h, C: c},
		scratch: n.NewStreamScratch(),
	}
	if primed {
		n.dense.ForwardInto(s.scratch.logits, h)
		tensor.Softmax(s.scratch.probs, s.scratch.logits)
		s.nextProbs = s.scratch.probs
	}
	return s, nil
}
