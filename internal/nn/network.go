package nn

import (
	"fmt"
	"math/rand"

	"misusedetect/internal/tensor"
)

// NetworkConfig describes the paper's model: one LSTM layer, a dropout
// layer, and a dense softmax output over the action set.
type NetworkConfig struct {
	// InputSize is the vocabulary size d (one-hot input dimension).
	InputSize int
	// HiddenSize is the LSTM unit count (256 in the paper).
	HiddenSize int
	// DropoutRate is the dropout applied between LSTM and dense layers
	// during training (0.4 in the paper).
	DropoutRate float64
	// Seed drives weight initialization and dropout masks.
	Seed int64
}

// PaperNetworkConfig returns the hyperparameters selected in the paper's
// preparatory evaluation: 256 LSTM units, dropout 0.4.
func PaperNetworkConfig(vocab int, seed int64) NetworkConfig {
	return NetworkConfig{InputSize: vocab, HiddenSize: 256, DropoutRate: 0.4, Seed: seed}
}

func (c *NetworkConfig) validate() error {
	if c.InputSize < 1 {
		return fmt.Errorf("nn: InputSize must be >= 1, got %d", c.InputSize)
	}
	if c.HiddenSize < 1 {
		return fmt.Errorf("nn: HiddenSize must be >= 1, got %d", c.HiddenSize)
	}
	if c.DropoutRate < 0 || c.DropoutRate >= 1 {
		return fmt.Errorf("nn: DropoutRate %v outside [0,1)", c.DropoutRate)
	}
	return nil
}

// LanguageNetwork is the next-action prediction network of the paper:
// one-hot action input -> LSTM -> dropout -> dense softmax over actions.
type LanguageNetwork struct {
	cfg   NetworkConfig
	lstm  *LSTM
	dense *Dense
	rng   *rand.Rand
	// quant is the weight precision; anything but QuantNone makes the
	// network inference-only. See Quantize.
	quant Quantization
}

// NewLanguageNetwork builds and initializes the network.
func NewLanguageNetwork(cfg NetworkConfig) (*LanguageNetwork, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	lstm, err := NewLSTM(cfg.InputSize, cfg.HiddenSize, rng)
	if err != nil {
		return nil, err
	}
	dense, err := NewDense(cfg.HiddenSize, cfg.InputSize, rng)
	if err != nil {
		return nil, err
	}
	return &LanguageNetwork{cfg: cfg, lstm: lstm, dense: dense, rng: rng}, nil
}

// Config returns the network configuration.
func (n *LanguageNetwork) Config() NetworkConfig { return n.cfg }

// Params returns all trainable parameters.
func (n *LanguageNetwork) Params() []*Param {
	return append(n.lstm.Params(), n.dense.Params()...)
}

// ParamCount returns the total number of trainable weights.
func (n *LanguageNetwork) ParamCount() int {
	total := 0
	for _, p := range n.Params() {
		total += len(p.W.Data)
	}
	return total
}

// validateSeq checks every index is either PaddingIndex (<0, zero input)
// or a valid action.
func (n *LanguageNetwork) validateSeq(seq []int) error {
	for i, x := range seq {
		if x >= n.cfg.InputSize {
			return fmt.Errorf("nn: sequence position %d index %d outside vocab %d", i, x, n.cfg.InputSize)
		}
	}
	return nil
}

// ForwardAll runs the network in inference mode over a sequence and
// returns, for every step t, the predicted distribution over the action
// following seq[:t+1]. No dropout is applied.
func (n *LanguageNetwork) ForwardAll(seq []int) ([]tensor.Vector, error) {
	if err := n.validateSeq(seq); err != nil {
		return nil, err
	}
	st := n.lstm.NewState()
	out := make([]tensor.Vector, len(seq))
	for t, x := range seq {
		h := n.lstm.Step(st, x, nil)
		logits := n.dense.Forward(h)
		probs := tensor.NewVector(len(logits))
		tensor.Softmax(probs, logits)
		out[t] = probs
	}
	return out, nil
}

// PredictNext returns the next-action distribution after consuming the
// whole context.
func (n *LanguageNetwork) PredictNext(context []int) (tensor.Vector, error) {
	if len(context) == 0 {
		return nil, fmt.Errorf("nn: empty context")
	}
	all, err := n.ForwardAll(context)
	if err != nil {
		return nil, err
	}
	return all[len(all)-1], nil
}

// StreamState is the incremental scorer used by the online monitor: it
// consumes one action at a time, returning the probability the model
// assigned to that action before consuming it. Its Observe signature
// deliberately matches the scorer.Stream contract — the neural network
// side of the pluggable backend seam — so lm can hand it to
// internal/core unwrapped (lm asserts the conformance; nn stays below
// the seam and does not import it).
type StreamState struct {
	net   *LanguageNetwork
	state *State
	// nextProbs is the prediction for the upcoming action; nil until the
	// first action is consumed.
	nextProbs tensor.Vector
	// scratch, when non-nil, switches the stream into buffer-reuse mode:
	// every Observe writes into the same preallocated buffers instead of
	// allocating fresh vectors.
	scratch *StreamScratch
}

// StreamScratch holds the preallocated buffers of an allocation-free
// stream: the LSTM step scratch plus the logits and probability vectors.
type StreamScratch struct {
	lstm   *StepScratch
	logits tensor.Vector
	probs  tensor.Vector
}

// NewStreamScratch allocates stream buffers sized for this network.
func (n *LanguageNetwork) NewStreamScratch() *StreamScratch {
	return &StreamScratch{
		lstm:   n.lstm.NewStepScratch(),
		logits: tensor.NewVector(n.cfg.InputSize),
		probs:  tensor.NewVector(n.cfg.InputSize),
	}
}

// NewStream returns a fresh incremental scorer.
func (n *LanguageNetwork) NewStream() *StreamState {
	return &StreamState{net: n, state: n.lstm.NewState()}
}

// NewStreamPrealloc returns an incremental scorer that reuses preallocated
// scratch buffers across steps, so steady-state scoring performs no
// per-action allocations. In this mode the distribution returned by
// Observe is overwritten by the next Observe; callers that retain it
// across steps must read it before observing again (or Clone it).
func (n *LanguageNetwork) NewStreamPrealloc() *StreamState {
	return &StreamState{net: n, state: n.lstm.NewState(), scratch: n.NewStreamScratch()}
}

// Observe consumes one action and returns (probability the model assigned
// to it, distribution over the following action). The first observed
// action has no prediction, so probability -1 is returned for it.
func (s *StreamState) Observe(action int) (float64, tensor.Vector, error) {
	if action < 0 || action >= s.net.cfg.InputSize {
		return 0, nil, fmt.Errorf("nn: stream action %d outside vocab %d", action, s.net.cfg.InputSize)
	}
	p := -1.0
	if s.nextProbs != nil {
		p = s.nextProbs[action]
	}
	var probs tensor.Vector
	if s.scratch != nil {
		h := s.net.lstm.StepReuse(s.state, action, s.scratch.lstm)
		s.net.dense.ForwardInto(s.scratch.logits, h)
		probs = s.scratch.probs
		tensor.Softmax(probs, s.scratch.logits)
	} else {
		h := s.net.lstm.Step(s.state, action, nil)
		logits := s.net.dense.Forward(h)
		probs = tensor.NewVector(len(logits))
		tensor.Softmax(probs, logits)
	}
	s.nextProbs = probs
	return p, probs, nil
}

// TrainSequence performs one forward/backward pass over a session,
// predicting each action from its predecessors (positions 1..n-1), and
// accumulates gradients of the mean per-step cross-entropy. It returns
// the mean loss and the number of predicted positions. The caller batches
// several calls and then applies the optimizer.
func (n *LanguageNetwork) TrainSequence(seq []int) (float64, int, error) {
	if len(seq) < 2 {
		return 0, 0, fmt.Errorf("nn: training sequence needs >= 2 actions, got %d", len(seq))
	}
	if n.quant != QuantNone {
		return 0, 0, fmt.Errorf("nn: cannot train a %s-quantized network", n.quant)
	}
	if err := n.validateSeq(seq); err != nil {
		return 0, 0, err
	}
	steps := len(seq) - 1
	caches := make([]stepCache, steps)
	hs := make([]tensor.Vector, steps)
	masks := make([]tensor.Vector, steps)
	dhs := make([]tensor.Vector, steps)

	st := n.lstm.NewState()
	var totalLoss float64
	inv := 1 / float64(steps)
	for t := 0; t < steps; t++ {
		h := n.lstm.Step(st, seq[t], &caches[t])
		dropped := h.Clone()
		mask, err := Dropout(dropped, n.cfg.DropoutRate, n.rng)
		if err != nil {
			return 0, 0, err
		}
		masks[t] = mask
		hs[t] = dropped
		logits := n.dense.Forward(dropped)
		_, loss, dLogits, err := SoftmaxCrossEntropy(logits, seq[t+1])
		if err != nil {
			return 0, 0, err
		}
		totalLoss += loss
		dLogits.Scale(inv)
		dh := n.dense.Backward(dropped, dLogits)
		DropoutBackward(dh, mask)
		dhs[t] = dh
	}

	// Backpropagation through time.
	dC := tensor.NewVector(n.cfg.HiddenSize)
	dH := tensor.NewVector(n.cfg.HiddenSize)
	for t := steps - 1; t >= 0; t-- {
		dH.AddScaled(1, dhs[t])
		var dHPrev, dCPrev tensor.Vector
		dHPrev, dCPrev = n.lstm.backwardStep(&caches[t], dH, dC)
		dH = dHPrev
		dC = dCPrev
	}
	return totalLoss * inv, steps, nil
}

// TrainWindow performs one forward/backward pass over a fixed window in
// the paper's many-to-one formulation: the network consumes the padded
// context (PaddingIndex entries are zero inputs) and is trained to predict
// only the target action. Gradients of the window loss are accumulated.
func (n *LanguageNetwork) TrainWindow(input []int, target int) (float64, error) {
	if len(input) == 0 {
		return 0, fmt.Errorf("nn: empty window input")
	}
	if n.quant != QuantNone {
		return 0, fmt.Errorf("nn: cannot train a %s-quantized network", n.quant)
	}
	if err := n.validateSeq(input); err != nil {
		return 0, err
	}
	if target < 0 || target >= n.cfg.InputSize {
		return 0, fmt.Errorf("nn: window target %d outside vocab %d", target, n.cfg.InputSize)
	}
	steps := len(input)
	caches := make([]stepCache, steps)
	st := n.lstm.NewState()
	var h tensor.Vector
	for t := 0; t < steps; t++ {
		h = n.lstm.Step(st, input[t], &caches[t])
	}
	dropped := h.Clone()
	mask, err := Dropout(dropped, n.cfg.DropoutRate, n.rng)
	if err != nil {
		return 0, err
	}
	logits := n.dense.Forward(dropped)
	_, loss, dLogits, err := SoftmaxCrossEntropy(logits, target)
	if err != nil {
		return 0, err
	}
	dh := n.dense.Backward(dropped, dLogits)
	DropoutBackward(dh, mask)

	dC := tensor.NewVector(n.cfg.HiddenSize)
	dH := dh
	for t := steps - 1; t >= 0; t-- {
		dH, dC = n.lstm.backwardStep(&caches[t], dH, dC)
	}
	return loss, nil
}
