package nn

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"misusedetect/internal/tensor"
)

func testNet(t *testing.T, vocab, hidden int, dropout float64, seed int64) *LanguageNetwork {
	t.Helper()
	net, err := NewLanguageNetwork(NetworkConfig{
		InputSize: vocab, HiddenSize: hidden, DropoutRate: dropout, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func TestNetworkConfigValidation(t *testing.T) {
	bad := []NetworkConfig{
		{InputSize: 0, HiddenSize: 2},
		{InputSize: 2, HiddenSize: 0},
		{InputSize: 2, HiddenSize: 2, DropoutRate: 1},
		{InputSize: 2, HiddenSize: 2, DropoutRate: -0.1},
	}
	for i, cfg := range bad {
		if _, err := NewLanguageNetwork(cfg); err == nil {
			t.Errorf("config %d must fail: %+v", i, cfg)
		}
	}
}

func TestForwardAllShapesAndSimplex(t *testing.T) {
	net := testNet(t, 7, 5, 0, 1)
	probs, err := net.ForwardAll([]int{0, 3, 6, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(probs) != 4 {
		t.Fatalf("got %d steps", len(probs))
	}
	for _, p := range probs {
		if len(p) != 7 {
			t.Fatalf("distribution size %d", len(p))
		}
		if math.Abs(p.Sum()-1) > 1e-9 {
			t.Fatalf("probs sum to %v", p.Sum())
		}
	}
	if _, err := net.ForwardAll([]int{9}); err == nil {
		t.Fatal("out-of-vocab index must fail")
	}
}

func TestForwardAllPaddingIsZeroInput(t *testing.T) {
	net := testNet(t, 5, 4, 0, 2)
	// Padding (-1) must be accepted and processed as a zero input.
	probs, err := net.ForwardAll([]int{-1, -1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(probs) != 3 {
		t.Fatal("padding steps must still produce predictions")
	}
}

func TestPredictNext(t *testing.T) {
	net := testNet(t, 5, 4, 0, 3)
	p, err := net.PredictNext([]int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(p) != 5 {
		t.Fatalf("distribution size %d", len(p))
	}
	if _, err := net.PredictNext(nil); err == nil {
		t.Fatal("empty context must fail")
	}
}

// numericalGradient perturbs every weight and compares the analytic
// gradient of the mean sequence loss against central differences.
func TestTrainSequenceGradientCheck(t *testing.T) {
	net := testNet(t, 6, 4, 0, 4) // dropout off: loss must be deterministic
	seq := []int{0, 3, 1, 5, 2, 4, 0, 1}

	lossOf := func() float64 {
		// Forward-only loss via ForwardAll.
		probs, err := net.ForwardAll(seq[:len(seq)-1])
		if err != nil {
			t.Fatal(err)
		}
		var sum float64
		for i, p := range probs {
			sum += -math.Log(p[seq[i+1]])
		}
		return sum / float64(len(probs))
	}

	// Analytic gradients.
	if _, _, err := net.TrainSequence(seq); err != nil {
		t.Fatal(err)
	}
	const h = 1e-5
	for _, p := range net.Params() {
		// Sample a handful of coordinates per parameter.
		rng := rand.New(rand.NewSource(9))
		for trial := 0; trial < 12; trial++ {
			i := rng.Intn(len(p.W.Data))
			orig := p.W.Data[i]
			p.W.Data[i] = orig + h
			up := lossOf()
			p.W.Data[i] = orig - h
			down := lossOf()
			p.W.Data[i] = orig
			numeric := (up - down) / (2 * h)
			analytic := p.G.Data[i]
			denom := math.Max(1e-6, math.Abs(numeric)+math.Abs(analytic))
			if rel := math.Abs(numeric-analytic) / denom; rel > 1e-4 {
				t.Fatalf("%s[%d]: analytic %v vs numeric %v (rel %v)",
					p.Name, i, analytic, numeric, rel)
			}
		}
		p.ZeroGrad()
	}
}

// Gradient check for the paper's many-to-one window training.
func TestTrainWindowGradientCheck(t *testing.T) {
	net := testNet(t, 5, 3, 0, 5)
	input := []int{-1, -1, 2, 0, 4, 1} // includes padding
	target := 3

	lossOf := func() float64 {
		probs, err := net.ForwardAll(input)
		if err != nil {
			t.Fatal(err)
		}
		last := probs[len(probs)-1]
		return -math.Log(last[target])
	}

	if _, err := net.TrainWindow(input, target); err != nil {
		t.Fatal(err)
	}
	const h = 1e-5
	for _, p := range net.Params() {
		rng := rand.New(rand.NewSource(11))
		for trial := 0; trial < 10; trial++ {
			i := rng.Intn(len(p.W.Data))
			orig := p.W.Data[i]
			p.W.Data[i] = orig + h
			up := lossOf()
			p.W.Data[i] = orig - h
			down := lossOf()
			p.W.Data[i] = orig
			numeric := (up - down) / (2 * h)
			analytic := p.G.Data[i]
			denom := math.Max(1e-6, math.Abs(numeric)+math.Abs(analytic))
			if rel := math.Abs(numeric-analytic) / denom; rel > 1e-4 {
				t.Fatalf("%s[%d]: analytic %v vs numeric %v (rel %v)",
					p.Name, i, analytic, numeric, rel)
			}
		}
		p.ZeroGrad()
	}
}

func TestTrainSequenceValidation(t *testing.T) {
	net := testNet(t, 5, 3, 0, 6)
	if _, _, err := net.TrainSequence([]int{1}); err == nil {
		t.Fatal("length-1 sequence must fail")
	}
	if _, _, err := net.TrainSequence([]int{1, 9}); err == nil {
		t.Fatal("out-of-vocab must fail")
	}
	if _, err := net.TrainWindow(nil, 1); err == nil {
		t.Fatal("empty window must fail")
	}
	if _, err := net.TrainWindow([]int{1}, 9); err == nil {
		t.Fatal("bad target must fail")
	}
}

// The network must learn a deterministic cycle essentially perfectly.
func TestTrainingLearnsDeterministicPattern(t *testing.T) {
	net := testNet(t, 4, 16, 0, 7)
	trainer, err := NewTrainer(net, TrainerConfig{
		Epochs: 60, BatchSize: 4, LearningRate: 0.01, ClipNorm: 5, Seed: 8, WindowSize: 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Cycle 0 1 2 3 0 1 2 3 ...
	seq := make([]int, 24)
	for i := range seq {
		seq[i] = i % 4
	}
	sessions := [][]int{seq, seq, seq, seq}
	stats, err := trainer.Fit(sessions, nil)
	if err != nil {
		t.Fatal(err)
	}
	first, last := stats[0].Loss, stats[len(stats)-1].Loss
	if last >= first {
		t.Fatalf("loss did not decrease: %v -> %v", first, last)
	}
	if last > 0.15 {
		t.Fatalf("final loss %v too high for a deterministic pattern", last)
	}
	// Greedy predictions continue the cycle.
	probs, err := net.ForwardAll(seq[:8])
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for i := 1; i < 8; i++ { // skip the first prediction (no context)
		if probs[i-1].ArgMax() == seq[i] {
			correct++
		}
	}
	if correct < 6 {
		t.Fatalf("only %d/7 cycle predictions correct", correct)
	}
}

func TestWindowedTrainingLearnsToo(t *testing.T) {
	net := testNet(t, 3, 12, 0, 9)
	trainer, err := NewTrainer(net, TrainerConfig{
		Epochs: 30, BatchSize: 8, LearningRate: 0.02, ClipNorm: 5, Seed: 1,
		Windowed: true, WindowSize: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	seq := []int{0, 1, 2, 0, 1, 2, 0, 1, 2, 0, 1, 2}
	stats, err := trainer.Fit([][]int{seq, seq}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats[len(stats)-1].Loss >= stats[0].Loss {
		t.Fatalf("windowed loss did not decrease: %v -> %v",
			stats[0].Loss, stats[len(stats)-1].Loss)
	}
}

func TestTrainerValidation(t *testing.T) {
	net := testNet(t, 3, 2, 0, 1)
	bad := []TrainerConfig{
		{Epochs: 0, BatchSize: 1, LearningRate: 0.1, WindowSize: 10},
		{Epochs: 1, BatchSize: 0, LearningRate: 0.1, WindowSize: 10},
		{Epochs: 1, BatchSize: 1, LearningRate: 0, WindowSize: 10},
		{Epochs: 1, BatchSize: 1, LearningRate: 0.1, WindowSize: 1},
	}
	for i, cfg := range bad {
		if _, err := NewTrainer(net, cfg); err == nil {
			t.Errorf("trainer config %d must fail", i)
		}
	}
	tr, _ := NewTrainer(net, TrainerConfig{Epochs: 1, BatchSize: 1, LearningRate: 0.1, WindowSize: 10})
	if _, err := tr.Fit([][]int{{1}}, nil); err == nil {
		t.Fatal("no trainable sessions must fail")
	}
}

func TestDropoutStatistics(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 10000
	x := tensor.NewVector(n)
	x.Fill(1)
	mask, err := Dropout(x, 0.4, rng)
	if err != nil {
		t.Fatal(err)
	}
	zeros := 0
	for i := range x {
		if x[i] == 0 {
			zeros++
		} else if math.Abs(x[i]-1/0.6) > 1e-9 {
			t.Fatalf("survivor scaled to %v, want %v", x[i], 1/0.6)
		}
	}
	rate := float64(zeros) / float64(n)
	if rate < 0.37 || rate > 0.43 {
		t.Fatalf("empirical dropout rate %v, want ~0.4", rate)
	}
	// Mean should be preserved by inverted scaling.
	if m := tensor.Mean(x); m < 0.95 || m > 1.05 {
		t.Fatalf("inverted dropout mean %v, want ~1", m)
	}
	if mask == nil {
		t.Fatal("mask must be returned in training mode")
	}
	// Identity cases.
	y := tensor.Vector{1, 2}
	m2, err := Dropout(y, 0, rng)
	if err != nil || m2 != nil || y[0] != 1 {
		t.Fatal("rate 0 must be identity")
	}
	if _, err := Dropout(y, 1, rng); err == nil {
		t.Fatal("rate 1 must fail")
	}
}

func TestDropoutBackward(t *testing.T) {
	dx := tensor.Vector{1, 1, 1}
	DropoutBackward(dx, tensor.Vector{0, 2, 0})
	if dx[0] != 0 || dx[1] != 2 || dx[2] != 0 {
		t.Fatalf("DropoutBackward = %v", dx)
	}
	dy := tensor.Vector{3}
	DropoutBackward(dy, nil) // identity
	if dy[0] != 3 {
		t.Fatal("nil mask must be identity")
	}
}

func TestSoftmaxCrossEntropy(t *testing.T) {
	logits := tensor.Vector{1, 2, 3}
	probs, loss, dLogits, err := SoftmaxCrossEntropy(logits, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(probs.Sum()-1) > 1e-12 {
		t.Fatal("probs not normalized")
	}
	if math.Abs(loss+math.Log(probs[2])) > 1e-12 {
		t.Fatal("loss is not -log p[target]")
	}
	// dLogits sums to zero (softmax Jacobian property).
	if math.Abs(dLogits.Sum()) > 1e-12 {
		t.Fatalf("dLogits sums to %v", dLogits.Sum())
	}
	if _, _, _, err := SoftmaxCrossEntropy(logits, 5); err == nil {
		t.Fatal("bad target must fail")
	}
}

func TestAdamConvergesOnQuadratic(t *testing.T) {
	// Minimize (w-3)^2 for a single scalar parameter.
	p := NewParam("w", 1, 1)
	adam, err := NewAdam(0.1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		p.G.Data[0] = 2 * (p.W.Data[0] - 3)
		adam.Step([]*Param{p})
	}
	if math.Abs(p.W.Data[0]-3) > 1e-2 {
		t.Fatalf("Adam converged to %v, want 3", p.W.Data[0])
	}
	if _, err := NewAdam(0); err == nil {
		t.Fatal("zero lr must fail")
	}
}

func TestClipGradNorm(t *testing.T) {
	p := NewParam("w", 1, 2)
	p.G.Data[0], p.G.Data[1] = 3, 4 // norm 5
	norm := ClipGradNorm([]*Param{p}, 1)
	if math.Abs(norm-5) > 1e-12 {
		t.Fatalf("pre-clip norm %v", norm)
	}
	if math.Abs(GradNorm([]*Param{p})-1) > 1e-9 {
		t.Fatalf("post-clip norm %v, want 1", GradNorm([]*Param{p}))
	}
	// No clip when under the bound.
	p.G.Data[0], p.G.Data[1] = 0.3, 0.4
	ClipGradNorm([]*Param{p}, 1)
	if math.Abs(p.G.Data[0]-0.3) > 1e-12 {
		t.Fatal("clip must not rescale small gradients")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	net := testNet(t, 6, 5, 0.4, 10)
	var buf bytes.Buffer
	if err := net.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := LoadLanguageNetwork(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Config() != net.Config() {
		t.Fatalf("config mismatch: %+v vs %+v", back.Config(), net.Config())
	}
	// Identical predictions.
	seq := []int{0, 2, 4, 1}
	a, _ := net.ForwardAll(seq)
	b, _ := back.ForwardAll(seq)
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatal("loaded network predicts differently")
			}
		}
	}
	if _, err := LoadLanguageNetwork(bytes.NewReader([]byte("garbage"))); err == nil {
		t.Fatal("garbage must fail to load")
	}
}

func TestStreamMatchesForwardAll(t *testing.T) {
	net := testNet(t, 6, 5, 0, 11)
	seq := []int{0, 3, 2, 5, 1}
	all, err := net.ForwardAll(seq)
	if err != nil {
		t.Fatal(err)
	}
	stream := net.NewStream()
	for i, a := range seq {
		p, next, err := stream.Observe(a)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			if p != -1 {
				t.Fatalf("first observation must have probability -1, got %v", p)
			}
		} else if math.Abs(p-all[i-1][a]) > 1e-12 {
			t.Fatalf("step %d stream prob %v, batch prob %v", i, p, all[i-1][a])
		}
		for j := range next {
			if math.Abs(next[j]-all[i][j]) > 1e-12 {
				t.Fatalf("step %d next-dist mismatch", i)
			}
		}
	}
	if _, _, err := stream.Observe(99); err == nil {
		t.Fatal("out-of-vocab stream action must fail")
	}
}

func TestSegment(t *testing.T) {
	cases := []struct {
		n, size  int
		segments int
	}{
		{1, 10, 0},
		{2, 10, 1},
		{10, 10, 1},
		{11, 10, 2},
		{19, 10, 2},
		{20, 10, 3},
	}
	for _, c := range cases {
		seq := make([]int, c.n)
		for i := range seq {
			seq[i] = i
		}
		segs := segment(seq, c.size)
		if len(segs) != c.segments {
			t.Errorf("segment(n=%d, size=%d) = %d segments, want %d", c.n, c.size, len(segs), c.segments)
			continue
		}
		// Every transition (i, i+1) must be covered exactly once.
		covered := map[int]int{}
		for _, s := range segs {
			for j := 0; j+1 < len(s); j++ {
				covered[s[j]]++
			}
		}
		for i := 0; i+1 < c.n; i++ {
			if covered[i] != 1 {
				t.Errorf("n=%d size=%d: transition from %d covered %d times", c.n, c.size, i, covered[i])
			}
		}
	}
}

func TestTrimPadding(t *testing.T) {
	got := trimPadding([]int{-1, -1, 3, 4})
	if len(got) != 2 || got[0] != 3 {
		t.Fatalf("trimPadding = %v", got)
	}
	if len(trimPadding([]int{1, 2})) != 2 {
		t.Fatal("no-pad input must be unchanged")
	}
}

func TestParamCount(t *testing.T) {
	net := testNet(t, 10, 4, 0, 12)
	// Wx: 16x10, Wh: 16x4, B: 1x16, dense W: 10x4, dense B: 1x10.
	want := 160 + 64 + 16 + 40 + 10
	if got := net.ParamCount(); got != want {
		t.Fatalf("ParamCount = %d, want %d", got, want)
	}
}

func TestSigmoid(t *testing.T) {
	if math.Abs(sigmoid(0)-0.5) > 1e-12 {
		t.Fatal("sigmoid(0) != 0.5")
	}
	if sigmoid(100) <= 0.999 || sigmoid(-100) >= 0.001 {
		t.Fatal("sigmoid saturation wrong")
	}
	if s := sigmoid(-745); s < 0 || math.IsNaN(s) {
		t.Fatalf("sigmoid underflow: %v", s)
	}
}
