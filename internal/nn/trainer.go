package nn

import (
	"fmt"
	"math/rand"

	"misusedetect/internal/actionlog"
)

// TrainerConfig holds the optimization hyperparameters. The paper selects
// minibatch size 32 and learning rate 0.001 in its preparatory evaluation.
type TrainerConfig struct {
	// Epochs over the training set.
	Epochs int
	// BatchSize is the number of examples per optimizer step.
	BatchSize int
	// LearningRate for Adam.
	LearningRate float64
	// ClipNorm bounds the global gradient norm per step (0 disables).
	ClipNorm float64
	// Seed shuffles the training order.
	Seed int64
	// Windowed selects the paper's exact many-to-one moving-window
	// training; when false the trainer uses the equivalent but much
	// cheaper per-step sequence training (see DESIGN.md).
	Windowed bool
	// WindowSize is the full moving-window length (100 in the paper);
	// sequence training also truncates BPTT segments to this length.
	WindowSize int
	// MinOptimizerSteps, when positive, raises the epoch count so the
	// model receives at least this many Adam steps regardless of corpus
	// size. Small behavior clusters need many passes to reach the same
	// training budget as the global baseline; comparing converged
	// models is what the paper's Figures 5 and 10 assume.
	MinOptimizerSteps int
	// MaxEpochs caps the MinOptimizerSteps adjustment (0 = 50).
	MaxEpochs int
}

// PaperTrainerConfig returns the paper's published settings.
func PaperTrainerConfig(seed int64) TrainerConfig {
	return TrainerConfig{
		Epochs:       10,
		BatchSize:    32,
		LearningRate: 0.001,
		ClipNorm:     5,
		Seed:         seed,
		Windowed:     false,
		WindowSize:   100,
	}
}

func (c *TrainerConfig) validate() error {
	if c.Epochs < 1 {
		return fmt.Errorf("nn: Epochs must be >= 1, got %d", c.Epochs)
	}
	if c.BatchSize < 1 {
		return fmt.Errorf("nn: BatchSize must be >= 1, got %d", c.BatchSize)
	}
	if c.LearningRate <= 0 {
		return fmt.Errorf("nn: LearningRate must be positive, got %v", c.LearningRate)
	}
	if c.WindowSize < 2 {
		return fmt.Errorf("nn: WindowSize must be >= 2, got %d", c.WindowSize)
	}
	return nil
}

// EpochStats reports training progress for one epoch.
type EpochStats struct {
	Epoch    int
	Loss     float64 // mean loss per prediction
	Examples int     // number of prediction targets
}

// Trainer fits a LanguageNetwork on encoded sessions.
type Trainer struct {
	cfg  TrainerConfig
	net  *LanguageNetwork
	adam *Adam
	rng  *rand.Rand
}

// NewTrainer builds a trainer for the network.
func NewTrainer(net *LanguageNetwork, cfg TrainerConfig) (*Trainer, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	adam, err := NewAdam(cfg.LearningRate)
	if err != nil {
		return nil, err
	}
	return &Trainer{
		cfg:  cfg,
		net:  net,
		adam: adam,
		rng:  rand.New(rand.NewSource(cfg.Seed)),
	}, nil
}

// Fit trains on the encoded sessions (each a slice of action indices).
// Sessions shorter than two actions are skipped, as in the paper. The
// returned stats hold one entry per epoch. An optional progress callback
// receives each epoch's stats as it completes.
func (t *Trainer) Fit(sessions [][]int, progress func(EpochStats)) ([]EpochStats, error) {
	if t.cfg.Windowed {
		return t.fitWindowed(sessions, progress)
	}
	return t.fitSequences(sessions, progress)
}

// fitSequences trains with per-step prediction over BPTT segments of at
// most WindowSize actions.
func (t *Trainer) fitSequences(sessions [][]int, progress func(EpochStats)) ([]EpochStats, error) {
	var segments [][]int
	for _, s := range sessions {
		segments = append(segments, segment(s, t.cfg.WindowSize)...)
	}
	if len(segments) == 0 {
		return nil, fmt.Errorf("nn: no trainable sessions (all shorter than 2 actions)")
	}
	epochs := t.effectiveEpochs(len(segments))
	params := t.net.Params()
	var stats []EpochStats
	for epoch := 0; epoch < epochs; epoch++ {
		t.rng.Shuffle(len(segments), func(i, j int) { segments[i], segments[j] = segments[j], segments[i] })
		var lossSum float64
		var examples int
		inBatch := 0
		for _, seg := range segments {
			loss, steps, err := t.net.TrainSequence(seg)
			if err != nil {
				return nil, fmt.Errorf("nn: train sequence: %w", err)
			}
			lossSum += loss * float64(steps)
			examples += steps
			inBatch++
			if inBatch == t.cfg.BatchSize {
				t.step(params, inBatch)
				inBatch = 0
			}
		}
		if inBatch > 0 {
			t.step(params, inBatch)
		}
		st := EpochStats{Epoch: epoch, Loss: lossSum / float64(examples), Examples: examples}
		stats = append(stats, st)
		if progress != nil {
			progress(st)
		}
	}
	return stats, nil
}

// fitWindowed trains in the paper's exact formulation: every session is
// expanded into zero-padded moving windows and each window is a
// many-to-one example.
func (t *Trainer) fitWindowed(sessions [][]int, progress func(EpochStats)) ([]EpochStats, error) {
	w, err := actionlog.NewWindower(t.cfg.WindowSize)
	if err != nil {
		return nil, err
	}
	windows := w.Corpus(sessions)
	if len(windows) == 0 {
		return nil, fmt.Errorf("nn: no training windows (all sessions shorter than 2 actions)")
	}
	epochs := t.effectiveEpochs(len(windows))
	params := t.net.Params()
	var stats []EpochStats
	for epoch := 0; epoch < epochs; epoch++ {
		t.rng.Shuffle(len(windows), func(i, j int) { windows[i], windows[j] = windows[j], windows[i] })
		var lossSum float64
		inBatch := 0
		for _, win := range windows {
			loss, err := t.net.TrainWindow(trimPadding(win.Input), win.Target)
			if err != nil {
				return nil, fmt.Errorf("nn: train window: %w", err)
			}
			lossSum += loss
			inBatch++
			if inBatch == t.cfg.BatchSize {
				t.step(params, inBatch)
				inBatch = 0
			}
		}
		if inBatch > 0 {
			t.step(params, inBatch)
		}
		st := EpochStats{Epoch: epoch, Loss: lossSum / float64(len(windows)), Examples: len(windows)}
		stats = append(stats, st)
		if progress != nil {
			progress(st)
		}
	}
	return stats, nil
}

// effectiveEpochs raises the configured epoch count until the training
// budget reaches MinOptimizerSteps Adam steps, bounded by MaxEpochs.
func (t *Trainer) effectiveEpochs(examples int) int {
	epochs := t.cfg.Epochs
	if t.cfg.MinOptimizerSteps <= 0 || examples == 0 {
		return epochs
	}
	stepsPerEpoch := (examples + t.cfg.BatchSize - 1) / t.cfg.BatchSize
	need := (t.cfg.MinOptimizerSteps + stepsPerEpoch - 1) / stepsPerEpoch
	if need > epochs {
		epochs = need
	}
	maxEpochs := t.cfg.MaxEpochs
	if maxEpochs <= 0 {
		maxEpochs = 50
	}
	if epochs > maxEpochs {
		epochs = maxEpochs
	}
	if epochs < t.cfg.Epochs {
		epochs = t.cfg.Epochs
	}
	return epochs
}

// step averages the accumulated gradients over the batch, clips, and
// applies Adam.
func (t *Trainer) step(params []*Param, batch int) {
	if batch > 1 {
		inv := 1 / float64(batch)
		for _, p := range params {
			p.G.Scale(inv)
		}
	}
	if t.cfg.ClipNorm > 0 {
		ClipGradNorm(params, t.cfg.ClipNorm)
	}
	t.adam.Step(params)
}

// segment splits a session into BPTT chunks of at most size actions with a
// one-action overlap so every transition is trained exactly once. Sessions
// shorter than 2 produce nothing.
func segment(seq []int, size int) [][]int {
	if len(seq) < 2 {
		return nil
	}
	if len(seq) <= size {
		return [][]int{seq}
	}
	var out [][]int
	for start := 0; start < len(seq)-1; start += size - 1 {
		end := start + size
		if end > len(seq) {
			end = len(seq)
		}
		out = append(out, seq[start:end])
		if end == len(seq) {
			break
		}
	}
	return out
}

// trimPadding removes leading PaddingIndex entries from a window input;
// the zero-state LSTM start is the canonical encoding of "no history".
func trimPadding(input []int) []int {
	i := 0
	for i < len(input) && input[i] == actionlog.PaddingIndex {
		i++
	}
	return input[i:]
}
