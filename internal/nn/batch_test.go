package nn

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
)

// quantNet builds a trained-ish network (random init is enough: the
// equivalence contracts are about kernels, not accuracy).
func quantNet(t *testing.T, vocab, hidden int, quant Quantization) *LanguageNetwork {
	t.Helper()
	net, err := NewLanguageNetwork(NetworkConfig{InputSize: vocab, HiddenSize: hidden, DropoutRate: 0, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if quant == QuantNone {
		return net
	}
	q, err := net.Quantize(quant)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

// TestStepBatchMatchesStepReuse pins the batched LSTM step to the
// serial scratch step bit for bit, across every quantization mode and
// across batch sizes that exercise the GEMM kernel's unroll and block
// tails. This equality is the foundation of the engine's byte-identical
// deterministic replay with micro-batching enabled.
func TestStepBatchMatchesStepReuse(t *testing.T) {
	for _, quant := range []Quantization{QuantNone, QuantF16, QuantInt8} {
		t.Run(quant.String(), func(t *testing.T) {
			const vocab, hidden = 37, 19
			net := quantNet(t, vocab, hidden, quant)
			rng := rand.New(rand.NewSource(9))
			for _, batch := range []int{1, 2, 3, 4, 5, 7, 33, 64} {
				serial := make([]*State, batch)
				batched := make([]*State, batch)
				for i := range serial {
					serial[i] = net.lstm.NewState()
					batched[i] = net.lstm.NewState()
				}
				scratch := net.lstm.NewStepScratch()
				bscratch := NewBatchScratch()
				xs := make([]int, batch)
				for step := 0; step < 11; step++ {
					for i := range xs {
						xs[i] = rng.Intn(vocab+1) - 1 // includes padding inputs
					}
					net.lstm.StepBatch(batched, xs, bscratch)
					view := bscratch.Batched(batched)
					for i, st := range serial {
						net.lstm.StepReuse(st, xs[i], scratch)
						for k := 0; k < hidden; k++ {
							if st.H[k] != batched[i].H[k] || st.C[k] != batched[i].C[k] {
								t.Fatalf("batch %d step %d stream %d unit %d: serial (h=%v c=%v) batched (h=%v c=%v)",
									batch, step, i, k, st.H[k], st.C[k], batched[i].H[k], batched[i].C[k])
							}
							if view.H.At(i, k) != st.H[k] {
								t.Fatalf("packed hidden view row %d unit %d: %v want %v",
									i, k, view.H.At(i, k), st.H[k])
							}
						}
					}
				}
			}
		})
	}
}

// TestObserveBatchMatchesObserve pins the full batched observation
// (LSTM step + dense GEMM + softmax + likelihood read) to serial
// Observe bit for bit, with streams moving between serial and batched
// observation across steps the way engine ticks mix them.
func TestObserveBatchMatchesObserve(t *testing.T) {
	for _, quant := range []Quantization{QuantNone, QuantF16, QuantInt8} {
		t.Run(quant.String(), func(t *testing.T) {
			const vocab, hidden, batch = 29, 13, 6
			net := quantNet(t, vocab, hidden, quant)
			rng := rand.New(rand.NewSource(17))
			serial := make([]*StreamState, batch)
			batched := make([]*StreamState, batch)
			for i := range serial {
				serial[i] = net.NewStreamPrealloc()
				batched[i] = net.NewStreamPrealloc()
			}
			scratch := NewBatchScratch()
			actions := make([]int, batch)
			liks := make([]float64, batch)
			for step := 0; step < 9; step++ {
				for i := range actions {
					actions[i] = rng.Intn(vocab)
				}
				if step%3 == 2 {
					// Mixed tick: advance serially, like a batch-1 wave.
					for i, st := range batched {
						lik, _, err := st.Observe(actions[i])
						if err != nil {
							t.Fatal(err)
						}
						liks[i] = lik
					}
				} else if err := net.ObserveBatch(batched, actions, liks, scratch); err != nil {
					t.Fatal(err)
				}
				for i, st := range serial {
					wantLik, wantProbs, err := st.Observe(actions[i])
					if err != nil {
						t.Fatal(err)
					}
					if liks[i] != wantLik {
						t.Fatalf("step %d stream %d: likelihood %v, serial %v", step, i, liks[i], wantLik)
					}
					for a := 0; a < vocab; a++ {
						if batched[i].nextProbs[a] != wantProbs[a] {
							t.Fatalf("step %d stream %d action %d: prob %v, serial %v",
								step, i, a, batched[i].nextProbs[a], wantProbs[a])
						}
					}
				}
			}
		})
	}
}

func TestObserveBatchRejectsForeignStream(t *testing.T) {
	a := quantNet(t, 11, 5, QuantNone)
	b := quantNet(t, 11, 5, QuantNone)
	streams := []*StreamState{a.NewStreamPrealloc(), b.NewStreamPrealloc()}
	err := a.ObserveBatch(streams, []int{1, 2}, make([]float64, 2), NewBatchScratch())
	if err == nil {
		t.Fatal("ObserveBatch accepted a stream from a different network")
	}
}

func TestObserveBatchSteadyStateAllocs(t *testing.T) {
	net := quantNet(t, 41, 23, QuantNone)
	const batch = 16
	streams := make([]*StreamState, batch)
	for i := range streams {
		streams[i] = net.NewStreamPrealloc()
	}
	scratch := NewBatchScratch()
	actions := make([]int, batch)
	liks := make([]float64, batch)
	// Warm the scratch to its steady-state size first.
	if err := net.ObserveBatch(streams, actions, liks, scratch); err != nil {
		t.Fatal(err)
	}
	i := 0
	allocs := testing.AllocsPerRun(50, func() {
		for j := range actions {
			actions[j] = (i + j) % 41
		}
		i++
		if err := net.ObserveBatch(streams, actions, liks, scratch); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("ObserveBatch allocated %.1f times per tick in steady state, want 0", allocs)
	}
}

// TestQuantizedScoreDivergence documents the quantization tolerance:
// per-step likelihoods of the f16 and int8 variants must stay within
// the documented envelope of the f64 network over random sessions.
// These bounds (f16: 1e-3, int8: 5e-2 absolute probability divergence)
// are the contract the corpus-AUC anchor in internal/harness leans on.
func TestQuantizedScoreDivergence(t *testing.T) {
	const vocab, hidden = 53, 31
	f64net := quantNet(t, vocab, hidden, QuantNone)
	bounds := map[Quantization]float64{QuantF16: 1e-3, QuantInt8: 5e-2}
	rng := rand.New(rand.NewSource(23))
	for quant, bound := range bounds {
		qnet := quantNet(t, vocab, hidden, quant)
		var maxDiv float64
		for session := 0; session < 20; session++ {
			a := f64net.NewStreamPrealloc()
			b := qnet.NewStreamPrealloc()
			for step := 0; step < 25; step++ {
				action := rng.Intn(vocab)
				la, _, err := a.Observe(action)
				if err != nil {
					t.Fatal(err)
				}
				lb, _, err := b.Observe(action)
				if err != nil {
					t.Fatal(err)
				}
				if d := math.Abs(la - lb); d > maxDiv {
					maxDiv = d
				}
			}
		}
		if maxDiv > bound {
			t.Errorf("%s: max per-step likelihood divergence %v exceeds documented bound %v",
				quant, maxDiv, bound)
		}
		t.Logf("%s: max per-step likelihood divergence %v (bound %v)", quant, maxDiv, bound)
	}
}

// TestQuantizedSaveLoadRoundTrip pins the serialization envelope
// extension: a quantized network survives Save/Load with its serving
// weights reproduced exactly, so the reloaded model scores
// bit-identically to the one that was saved.
func TestQuantizedSaveLoadRoundTrip(t *testing.T) {
	const vocab, hidden = 31, 17
	for _, quant := range []Quantization{QuantNone, QuantF16, QuantInt8} {
		t.Run(quant.String(), func(t *testing.T) {
			net := quantNet(t, vocab, hidden, quant)
			var buf bytes.Buffer
			if err := net.Save(&buf); err != nil {
				t.Fatal(err)
			}
			loaded, err := LoadLanguageNetwork(&buf)
			if err != nil {
				t.Fatal(err)
			}
			if loaded.Quantization() != quant {
				t.Fatalf("loaded quantization %s, want %s", loaded.Quantization(), quant)
			}
			seq := randomSeq(40, vocab, 3)
			a, b := net.NewStreamPrealloc(), loaded.NewStreamPrealloc()
			for _, action := range seq {
				la, _, err := a.Observe(action)
				if err != nil {
					t.Fatal(err)
				}
				lb, _, err := b.Observe(action)
				if err != nil {
					t.Fatal(err)
				}
				if la != lb {
					t.Fatalf("reloaded %s network diverged: %v vs %v", quant, la, lb)
				}
			}
			if quant != QuantNone {
				if _, _, err := loaded.TrainSequence(seq[:5]); err == nil {
					t.Fatal("quantized network accepted training")
				}
			}
		})
	}
}

func TestQuantizeRejectsDoubleQuantization(t *testing.T) {
	net := quantNet(t, 11, 5, QuantInt8)
	if _, err := net.Quantize(QuantF16); err == nil {
		t.Fatal("Quantize accepted an already-quantized network")
	}
}
