// Package nn is a from-scratch neural-network stack sufficient for the
// paper's behavior models: an LSTM recurrent layer, a dense softmax output
// layer, inverted dropout, softmax cross-entropy loss, the Adam optimizer
// with global-norm gradient clipping, and gob serialization. It follows
// the paper's architecture exactly — one LSTM layer, a dropout layer, and
// a dense layer with softmax activation — with the paper's
// hyperparameters (256 units, dropout 0.4, minibatch 32, learning rate
// 0.001) available as defaults.
//
// Everything is float64 and CPU-bound; correctness is established by
// finite-difference gradient checks in the test suite.
package nn

import (
	"fmt"
	"math"

	"misusedetect/internal/tensor"
)

// Param is one trainable weight matrix (vectors are 1 x n matrices)
// together with its gradient accumulator.
type Param struct {
	// Name identifies the parameter in serialized models and debugging.
	Name string
	// W is the weight storage.
	W *tensor.Matrix
	// G accumulates dLoss/dW between optimizer steps.
	G *tensor.Matrix
}

// NewParam allocates a zeroed parameter of the given shape.
func NewParam(name string, rows, cols int) *Param {
	return &Param{Name: name, W: tensor.NewMatrix(rows, cols), G: tensor.NewMatrix(rows, cols)}
}

// ZeroGrad clears the gradient accumulator.
func (p *Param) ZeroGrad() { p.G.Zero() }

// GradNorm returns the global L2 norm of the gradients of params.
func GradNorm(params []*Param) float64 {
	var s float64
	for _, p := range params {
		for _, g := range p.G.Data {
			s += g * g
		}
	}
	return math.Sqrt(s)
}

// ClipGradNorm rescales all gradients so their global norm is at most
// maxNorm; it returns the pre-clip norm.
func ClipGradNorm(params []*Param, maxNorm float64) float64 {
	norm := GradNorm(params)
	if maxNorm > 0 && norm > maxNorm {
		scale := maxNorm / norm
		for _, p := range params {
			p.G.Scale(scale)
		}
	}
	return norm
}

// Adam implements the Adam optimizer (Kingma & Ba) over a parameter set.
type Adam struct {
	// LearningRate is the step size (0.001 in the paper).
	LearningRate float64
	// Beta1, Beta2 are the moment decay rates.
	Beta1, Beta2 float64
	// Epsilon stabilizes the denominator.
	Epsilon float64

	step int
	m    map[*Param]*tensor.Matrix
	v    map[*Param]*tensor.Matrix
}

// NewAdam returns an Adam optimizer with standard moment settings.
func NewAdam(lr float64) (*Adam, error) {
	if lr <= 0 {
		return nil, fmt.Errorf("nn: learning rate must be positive, got %v", lr)
	}
	return &Adam{
		LearningRate: lr,
		Beta1:        0.9,
		Beta2:        0.999,
		Epsilon:      1e-8,
		m:            make(map[*Param]*tensor.Matrix),
		v:            make(map[*Param]*tensor.Matrix),
	}, nil
}

// Step applies one Adam update to every parameter using its accumulated
// gradient, then zeroes the gradients.
func (a *Adam) Step(params []*Param) {
	a.step++
	c1 := 1 - math.Pow(a.Beta1, float64(a.step))
	c2 := 1 - math.Pow(a.Beta2, float64(a.step))
	for _, p := range params {
		m, ok := a.m[p]
		if !ok {
			m = tensor.NewMatrix(p.W.Rows, p.W.Cols)
			a.m[p] = m
		}
		v, ok := a.v[p]
		if !ok {
			v = tensor.NewMatrix(p.W.Rows, p.W.Cols)
			a.v[p] = v
		}
		for i, g := range p.G.Data {
			m.Data[i] = a.Beta1*m.Data[i] + (1-a.Beta1)*g
			v.Data[i] = a.Beta2*v.Data[i] + (1-a.Beta2)*g*g
			mHat := m.Data[i] / c1
			vHat := v.Data[i] / c2
			p.W.Data[i] -= a.LearningRate * mHat / (math.Sqrt(vHat) + a.Epsilon)
		}
		p.ZeroGrad()
	}
}

// sigmoid is the logistic function.
func sigmoid(x float64) float64 {
	if x >= 0 {
		return 1 / (1 + math.Exp(-x))
	}
	e := math.Exp(x)
	return e / (1 + e)
}
