package nn

import (
	"fmt"
	"math"

	"misusedetect/internal/tensor"
)

// Cross-session micro-batched inference: a shard that holds N live LSTM
// streams advances all of them with one recurrent GEMM and one output
// GEMM per tick instead of 2N matvecs, so the weight matrices are
// streamed from memory once per tick rather than once per event.
//
// The batched path is bit-identical to N serial StepReuse/Observe calls:
// the GEMM kernels accumulate each output element in a single scalar
// over ascending k (tensor.MatMulNT's contract), the pre-activation is
// assembled in the same (bias + wx) + dot order as LSTM.preactivate,
// and the elementwise gate math is the same expressions per element.
// That equivalence is what lets the engine's deterministic-replay mode
// batch freely.

// BatchScratch holds the packed matrices of a batched step. It grows to
// the largest batch it has served and is reused across ticks; one
// scratch must not be shared between goroutines.
type BatchScratch struct {
	// h packs one stream's hidden vector per row: the previous h during
	// the recurrent GEMM, overwritten with the new h for the output GEMM.
	h *tensor.Matrix
	// z holds the 4H gate pre-activations, one row per stream.
	z *tensor.Matrix
	// logits holds the dense outputs, one row per stream.
	logits *tensor.Matrix
	// states is the *State gather buffer used by ObserveBatch.
	states []*State
}

// NewBatchScratch returns an empty scratch; buffers are allocated on
// first use and grown on demand.
func NewBatchScratch() *BatchScratch { return &BatchScratch{} }

// BatchedState is the packed view of one batched step: row i of the
// hidden matrix belongs to States[i]. Valid after a StepBatch call on
// the scratch it came from (see BatchScratch.Batched) until the next.
type BatchedState struct {
	States []*State
	H      *tensor.Matrix
}

// Batched returns the packed view of the last StepBatch run through
// this scratch: H row i holds the post-step hidden vector of states[i].
func (s *BatchScratch) Batched(states []*State) BatchedState {
	return BatchedState{States: states, H: s.h}
}

// StepBatch advances N independent states by one input each (xs[i] < 0
// encodes a zero/padded input), running the four gate transforms of all
// streams as a single GEMM. The states must be distinct. Each state ends
// bit-identical to what StepReuse would have produced on it.
func (l *LSTM) StepBatch(states []*State, xs []int, s *BatchScratch) {
	if len(states) != len(xs) {
		panic(fmt.Sprintf("nn: StepBatch %d states but %d inputs", len(states), len(xs)))
	}
	n := len(states)
	if n == 0 {
		return
	}
	hs := l.HiddenSize
	s.h = tensor.GrowMatrix(s.h, n, hs)
	for i, st := range states {
		copy(s.h.Row(i), st.H)
	}
	s.z = tensor.GrowMatrix(s.z, n, 4*hs)
	if l.WhQ != nil {
		tensor.MatMulNTQ(s.z, s.h, l.WhQ)
	} else {
		tensor.MatMulNT(s.z, s.h, l.Wh.W)
	}
	bias := l.B.W.Data
	for i, st := range states {
		z := s.z.Row(i)
		// Fold in bias and the one-hot input column in the serial order:
		// z = (bias + wx) + dot.
		switch x := xs[i]; {
		case x < 0:
			for r, d := range z {
				z[r] = bias[r] + d
			}
		case l.WxQ != nil:
			for r, d := range z {
				z[r] = (bias[r] + l.WxQ.At(r, x)) + d
			}
		default:
			for r, d := range z {
				z[r] = (bias[r] + l.Wx.W.Data[r*l.InputSize+x]) + d
			}
		}
		hrow := s.h.Row(i)
		for k := 0; k < hs; k++ {
			ig := sigmoid(z[k])
			fg := sigmoid(z[hs+k])
			og := sigmoid(z[2*hs+k])
			gg := math.Tanh(z[3*hs+k])
			c := fg*st.C[k] + ig*gg
			st.C[k] = c
			h := og * math.Tanh(c)
			st.H[k] = h
			hrow[k] = h
		}
	}
}

// ObserveBatch advances N distinct streams of this network by one action
// each, writing into liks[i] the probability stream i's model assigned
// to actions[i] before consuming it (-1 for a stream's first action) —
// the batched equivalent of calling Observe on every stream, and
// bit-identical to it. Streams may move freely between serial and
// batched observation across calls. The scratch carries all transient
// buffers, so one network can serve concurrent ObserveBatch calls as
// long as each caller brings its own scratch (and disjoint streams).
func (n *LanguageNetwork) ObserveBatch(streams []*StreamState, actions []int, liks []float64, s *BatchScratch) error {
	if len(streams) != len(actions) || len(streams) != len(liks) {
		return fmt.Errorf("nn: ObserveBatch length mismatch streams=%d actions=%d liks=%d",
			len(streams), len(actions), len(liks))
	}
	if len(streams) == 0 {
		return nil
	}
	s.states = s.states[:0]
	for i, st := range streams {
		if st.net != n {
			return fmt.Errorf("nn: ObserveBatch stream %d belongs to a different network", i)
		}
		a := actions[i]
		if a < 0 || a >= n.cfg.InputSize {
			return fmt.Errorf("nn: stream action %d outside vocab %d", a, n.cfg.InputSize)
		}
		liks[i] = -1
		if st.nextProbs != nil {
			liks[i] = st.nextProbs[a]
		}
		s.states = append(s.states, st.state)
	}
	n.lstm.StepBatch(s.states, actions, s)
	s.logits = tensor.GrowMatrix(s.logits, len(streams), n.cfg.InputSize)
	if n.dense.WQ != nil {
		tensor.MatMulNTQ(s.logits, s.h, n.dense.WQ)
	} else {
		tensor.MatMulNT(s.logits, s.h, n.dense.W.W)
	}
	tensor.AddBiasRows(s.logits, tensor.Vector(n.dense.B.W.Data))
	for i, st := range streams {
		var probs tensor.Vector
		if st.scratch != nil {
			probs = st.scratch.probs
		} else {
			// Non-prealloc streams get a fresh distribution per step,
			// matching serial Observe.
			probs = tensor.NewVector(n.cfg.InputSize)
		}
		tensor.Softmax(probs, s.logits.Row(i))
		st.nextProbs = probs
	}
	return nil
}
