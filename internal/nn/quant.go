package nn

import (
	"fmt"

	"misusedetect/internal/tensor"
)

// Quantization selects the weight precision of an inference network.
type Quantization int

const (
	// QuantNone is full float64 precision, the training format.
	QuantNone Quantization = iota
	// QuantF16 stores weights as IEEE 754 binary16: serialized models
	// shrink 4x and in memory the kernels compute in float64 on the
	// rounded values, so every kernel (serial and batched) is untouched.
	QuantF16
	// QuantInt8 stores weights as int8 with one absmax scale per output
	// row; the hot kernels read the int8 payload directly, trading a
	// bounded score divergence for an 8x smaller weight working set.
	QuantInt8
)

// String returns the serialization tag of the mode: "f64", "f16", "int8".
func (q Quantization) String() string {
	switch q {
	case QuantNone:
		return "f64"
	case QuantF16:
		return "f16"
	case QuantInt8:
		return "int8"
	}
	return fmt.Sprintf("Quantization(%d)", int(q))
}

// ParseQuantization maps a mode tag to its Quantization. "f64" (with
// "f32", "none", and "" as aliases for full precision), "f16", "int8".
func ParseQuantization(s string) (Quantization, error) {
	switch s {
	case "", "f64", "f32", "none":
		return QuantNone, nil
	case "f16":
		return QuantF16, nil
	case "int8":
		return QuantInt8, nil
	}
	return QuantNone, fmt.Errorf("nn: unknown quantization %q (want f64, f16, or int8)", s)
}

// Quantization returns the weight precision this network runs at.
func (n *LanguageNetwork) Quantization() Quantization { return n.quant }

// Quantize returns an inference-only copy of the network with the three
// weight matrices (lstm.wx, lstm.wh, dense.w) stored at the requested
// precision; biases stay float64 in every mode (they are a vanishing
// fraction of the parameters and quantizing them costs accuracy for no
// bandwidth). The receiver is untouched. Training entry points of the
// returned network fail: quantized weights have no gradient story.
//
// For QuantInt8 the float64 weight storage is replaced by the
// dequantized values so parameter introspection stays meaningful, but
// every inference kernel reads the int8 payload — serial and batched
// int8 scoring are bit-identical to each other by the same
// ascending-k accumulation contract as the float kernels.
func (n *LanguageNetwork) Quantize(mode Quantization) (*LanguageNetwork, error) {
	if n.quant != QuantNone {
		return nil, fmt.Errorf("nn: network is already quantized (%s)", n.quant)
	}
	out, err := NewLanguageNetwork(n.cfg)
	if err != nil {
		return nil, err
	}
	src, dst := n.Params(), out.Params()
	for i, p := range src {
		copy(dst[i].W.Data, p.W.Data)
	}
	switch mode {
	case QuantNone:
		return out, nil
	case QuantF16:
		tensor.RoundMatrixF16(out.lstm.Wx.W)
		tensor.RoundMatrixF16(out.lstm.Wh.W)
		tensor.RoundMatrixF16(out.dense.W.W)
	case QuantInt8:
		out.lstm.WxQ = tensor.Quantize(out.lstm.Wx.W)
		out.lstm.WhQ = tensor.Quantize(out.lstm.Wh.W)
		out.dense.WQ = tensor.Quantize(out.dense.W.W)
		out.lstm.Wx.W = out.lstm.WxQ.Dequantize()
		out.lstm.Wh.W = out.lstm.WhQ.Dequantize()
		out.dense.W.W = out.dense.WQ.Dequantize()
	default:
		return nil, fmt.Errorf("nn: unknown quantization mode %d", int(mode))
	}
	out.quant = mode
	return out, nil
}
