package nn

import (
	"bytes"
	"encoding/gob"
	"testing"
)

// TestLoadLanguageNetworkRejectsHugeConfig pins the load-path allocation
// bound: a tiny gob stream declaring billion-unit layers must fail with a
// descriptive error instead of allocating O(dim^2) weight matrices (the
// unbounded-allocation bug surfaced by FuzzEnvelopeDecode).
func TestLoadLanguageNetworkRejectsHugeConfig(t *testing.T) {
	for _, cfg := range []NetworkConfig{
		{InputSize: 1 << 30, HiddenSize: 4},
		{InputSize: 4, HiddenSize: 1 << 30},
		{InputSize: 1 << 33, HiddenSize: 1 << 33}, // rows*cols would overflow
		// Each dimension under the per-dim cap, but the implied gate
		// matrix would still span terabytes: the product bound catches it.
		{InputSize: 1 << 19, HiddenSize: 1 << 19},
		{InputSize: 2, HiddenSize: 1 << 19},
		// 4*hidden*(in+hidden) wraps past 2^32 here: the division-form
		// comparison must still reject it on 32-bit platforms.
		{InputSize: 1 << 20, HiddenSize: 1 << 10},
	} {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(&serializedNetwork{Config: cfg}); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadLanguageNetwork(&buf); err == nil {
			t.Fatalf("config %+v must be rejected", cfg)
		}
	}
}

// TestNetworkSaveLoadRoundTrip: a legitimate network survives the bound.
func TestNetworkSaveLoadRoundTrip(t *testing.T) {
	n, err := NewLanguageNetwork(NetworkConfig{InputSize: 5, HiddenSize: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := n.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := LoadLanguageNetwork(&buf)
	if err != nil {
		t.Fatal(err)
	}
	a, err := n.ForwardAll([]int{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	b, err := back.ForwardAll([]int{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatalf("step %d output %d changed across save/load", i, j)
			}
		}
	}
}
