package main

import (
	"unicode/utf8"

	"misusedetect/internal/actionlog"
)

// fastBatch is the zero-copy scan of a {"batch":[...]} frame: one pass
// over the wire bytes, no reflection, and — for actions the interner
// already knows — no string allocation at all (the token is looked up
// straight from the byte slice). Per-event allocations are exactly the
// session-ID and user strings the engine must own.
//
// The scanner deliberately covers only the well-formed fast subset:
// strictly a single top-level "batch" key, string-valued fields from the
// known event schema, no escape sequences, valid UTF-8, every bound
// respected. Anything else — a command line, a single event, malformed
// JSON, an oversized field or frame, an exotic but legal encoding —
// returns ok=false and the caller falls back to the reflective decoder,
// which remains the single source of truth for protocol errors. A
// fuzz-driven differential test pins the two paths to identical results
// on every accepted input.
func (p *connParser) fastBatch(line []byte) (evs []misusedBatch, ok bool) {
	s := fastScanner{b: line}
	s.ws()
	if !s.eat('{') {
		return nil, false
	}
	s.ws()
	if key, kok := s.rawString(); !kok || string(key) != "batch" {
		return nil, false
	}
	s.ws()
	if !s.eat(':') {
		return nil, false
	}
	s.ws()
	if !s.eat('[') {
		return nil, false
	}
	evs = p.toks[:0]
	s.ws()
	if s.peek() == ']' {
		// Empty frames are protocol errors; let the slow path say so.
		return nil, false
	}
	for {
		ev, eok := p.fastEvent(&s)
		if !eok || len(evs) >= maxBatchLen {
			return nil, false
		}
		evs = append(evs, ev)
		s.ws()
		if s.eat(',') {
			s.ws()
			continue
		}
		if s.eat(']') {
			break
		}
		return nil, false
	}
	s.ws()
	if !s.eat('}') {
		return nil, false
	}
	s.ws()
	if !s.done() {
		return nil, false
	}
	p.toks = evs
	return evs, true
}

// fastEvent scans one event object of the fast subset and validates the
// protocol bounds inline.
func (p *connParser) fastEvent(s *fastScanner) (misusedBatch, bool) {
	if !s.eat('{') {
		return misusedBatch{}, false
	}
	var timeB, userB, sidB, actionB []byte
	var haveTime, haveAction bool
	s.ws()
	if !s.eat('}') {
		for {
			key, ok := s.rawString()
			if !ok {
				return misusedBatch{}, false
			}
			s.ws()
			if !s.eat(':') {
				return misusedBatch{}, false
			}
			s.ws()
			val, ok := s.rawString()
			if !ok {
				return misusedBatch{}, false
			}
			switch string(key) {
			case "time":
				timeB = val
				haveTime = true
			case "user":
				userB = val
			case "session_id":
				sidB = val
			case "action":
				actionB = val
				haveAction = true
			default:
				// Unknown keys (or non-string values, rejected above)
				// are legal JSON the fast subset doesn't model.
				return misusedBatch{}, false
			}
			s.ws()
			if s.eat(',') {
				s.ws()
				continue
			}
			if s.eat('}') {
				break
			}
			return misusedBatch{}, false
		}
	}
	if len(sidB) == 0 || !haveAction || len(actionB) == 0 {
		return misusedBatch{}, false
	}
	if len(sidB) > maxFieldLen || len(userB) > maxFieldLen || len(actionB) > maxFieldLen {
		return misusedBatch{}, false
	}
	if haveTime && len(timeB) == 0 {
		// "time":"" — the reflective decoder rejects it; let it.
		return misusedBatch{}, false
	}
	ev := misusedBatch{}
	if len(timeB) > 0 {
		// Re-quote into reused scratch and run time.Time's own JSON
		// decoder, so timestamp acceptance is bit-for-bit the slow
		// path's.
		p.timeBuf = append(append(append(p.timeBuf[:0], '"'), timeB...), '"')
		if err := ev.Ev.Time.UnmarshalJSON(p.timeBuf); err != nil {
			return misusedBatch{}, false
		}
	}
	ev.Ev.SessionID = string(sidB)
	if len(userB) > 0 {
		ev.Ev.User = string(userB)
	}
	ev.Tok = p.interner.InternBytes(actionB)
	if ev.Tok == actionlog.TokenUnknown {
		// Past the interner's learning budget: the engine needs the
		// name to classify the event, so materialize it (rare path).
		ev.Ev.Action = string(actionB)
	}
	return ev, true
}

// fastScanner is a byte cursor over one wire line.
type fastScanner struct {
	b   []byte
	pos int
}

func (s *fastScanner) ws() {
	for s.pos < len(s.b) {
		switch s.b[s.pos] {
		case ' ', '\t', '\n', '\r':
			s.pos++
		default:
			return
		}
	}
}

func (s *fastScanner) eat(c byte) bool {
	if s.pos < len(s.b) && s.b[s.pos] == c {
		s.pos++
		return true
	}
	return false
}

func (s *fastScanner) peek() byte {
	if s.pos < len(s.b) {
		return s.b[s.pos]
	}
	return 0
}

func (s *fastScanner) done() bool { return s.pos == len(s.b) }

// rawString scans a JSON string of the fast subset — no escape
// sequences, no control characters, valid UTF-8 — returning the raw
// bytes between the quotes without copying. Escapes and invalid UTF-8
// (which encoding/json would unescape or coerce) report false so the
// slow path decodes them.
func (s *fastScanner) rawString() ([]byte, bool) {
	if !s.eat('"') {
		return nil, false
	}
	start := s.pos
	high := false
	for s.pos < len(s.b) {
		c := s.b[s.pos]
		switch {
		case c == '"':
			out := s.b[start:s.pos]
			s.pos++
			if high && !utf8.Valid(out) {
				return nil, false
			}
			return out, true
		case c == '\\' || c < 0x20:
			return nil, false
		case c >= 0x80:
			high = true
		}
		s.pos++
	}
	return nil, false
}
