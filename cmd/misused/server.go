package main

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"time"

	"misusedetect/internal/actionlog"
	"misusedetect/internal/core"
)

// ServerConfig configures the monitoring daemon.
type ServerConfig struct {
	// Listen is the TCP address to bind.
	Listen string
	// IdleExpiry evicts session monitors that have not seen an event
	// for this long.
	IdleExpiry time.Duration
	// Monitor is the per-session alarm configuration.
	Monitor core.MonitorConfig
	// Logf receives operational log lines; nil silences them.
	Logf func(format string, args ...any)
}

// Alarm is the JSON line written back to clients when a session looks
// suspicious.
type Alarm struct {
	Time       time.Time `json:"time"`
	SessionID  string    `json:"session_id"`
	User       string    `json:"user"`
	Kind       string    `json:"kind"`
	Position   int       `json:"position"`
	Cluster    int       `json:"cluster"`
	Likelihood float64   `json:"likelihood"`
}

// Server is the TCP ingestion daemon.
type Server struct {
	cfg ServerConfig
	det *core.Detector
	ln  net.Listener

	mu       sync.Mutex
	sessions map[string]*trackedSession
	wg       sync.WaitGroup
}

type trackedSession struct {
	// mu serializes monitor access: two shippers may carry events for
	// the same session.
	mu       sync.Mutex
	monitor  *core.SessionMonitor
	lastSeen time.Time
	user     string
}

// observe feeds one action to the session's monitor.
func (t *trackedSession) observe(action string) (core.MonitorStep, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.monitor.ObserveAction(action)
}

// NewServer binds the listen address and prepares the daemon.
func NewServer(det *core.Detector, cfg ServerConfig) (*Server, error) {
	if cfg.IdleExpiry <= 0 {
		return nil, fmt.Errorf("misused: IdleExpiry must be positive, got %v", cfg.IdleExpiry)
	}
	ln, err := net.Listen("tcp", cfg.Listen)
	if err != nil {
		return nil, fmt.Errorf("misused: listen %s: %w", cfg.Listen, err)
	}
	return &Server{
		cfg:      cfg,
		det:      det,
		ln:       ln,
		sessions: make(map[string]*trackedSession),
	}, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Serve accepts connections until the context is canceled, then closes
// the listener and waits for every connection handler to finish.
func (s *Server) Serve(ctx context.Context) error {
	done := make(chan struct{})
	go func() {
		defer close(done)
		<-ctx.Done()
		s.ln.Close()
	}()
	sweeper := time.NewTicker(s.cfg.IdleExpiry / 2)
	defer sweeper.Stop()
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case <-sweeper.C:
				s.expireIdle()
			}
		}
	}()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			select {
			case <-ctx.Done():
				s.wg.Wait()
				<-done
				return nil
			default:
				return fmt.Errorf("misused: accept: %w", err)
			}
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handle(ctx, conn)
		}()
	}
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// handle processes one client connection: parse events, feed the matching
// session monitor, write back alarms.
func (s *Server) handle(ctx context.Context, conn net.Conn) {
	defer conn.Close()
	go func() {
		// Unblock reads on shutdown.
		<-ctx.Done()
		conn.SetReadDeadline(time.Now())
	}()
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	enc := json.NewEncoder(conn)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var ev actionlog.Event
		if err := json.Unmarshal(line, &ev); err != nil {
			s.logf("bad event from %s: %v", conn.RemoteAddr(), err)
			continue
		}
		alarms, err := s.observe(ev)
		if err != nil {
			s.logf("session %s: %v", ev.SessionID, err)
			continue
		}
		for _, a := range alarms {
			if err := enc.Encode(&a); err != nil {
				s.logf("write alarm to %s: %v", conn.RemoteAddr(), err)
				return
			}
		}
	}
}

// observe feeds one event to its session monitor and returns any alarms.
func (s *Server) observe(ev actionlog.Event) ([]Alarm, error) {
	if ev.SessionID == "" || ev.Action == "" {
		return nil, fmt.Errorf("misused: event missing session_id or action")
	}
	s.mu.Lock()
	tracked, ok := s.sessions[ev.SessionID]
	if !ok {
		mon, err := s.det.NewSessionMonitor(s.cfg.Monitor)
		if err != nil {
			s.mu.Unlock()
			return nil, err
		}
		tracked = &trackedSession{monitor: mon, user: ev.User}
		s.sessions[ev.SessionID] = tracked
	}
	tracked.lastSeen = time.Now()
	s.mu.Unlock()

	stepResult, err := tracked.observe(ev.Action)
	if err != nil {
		return nil, err
	}
	var alarms []Alarm
	for _, kind := range stepResult.Alarms {
		alarms = append(alarms, Alarm{
			Time:       ev.Time,
			SessionID:  ev.SessionID,
			User:       ev.User,
			Kind:       kind.String(),
			Position:   stepResult.Position,
			Cluster:    stepResult.Cluster,
			Likelihood: stepResult.Smoothed,
		})
	}
	return alarms, nil
}

// expireIdle drops sessions that have been quiet past the expiry.
func (s *Server) expireIdle() {
	cutoff := time.Now().Add(-s.cfg.IdleExpiry)
	s.mu.Lock()
	defer s.mu.Unlock()
	for id, t := range s.sessions {
		if t.lastSeen.Before(cutoff) {
			delete(s.sessions, id)
		}
	}
}

// SessionCount reports the number of live session monitors.
func (s *Server) SessionCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.sessions)
}
