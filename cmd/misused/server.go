package main

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"time"

	"misusedetect/internal/actionlog"
	"misusedetect/internal/core"
	"misusedetect/internal/pipeline"
	"misusedetect/internal/rollout"
)

// ServerConfig configures the monitoring daemon.
type ServerConfig struct {
	// Listen is the TCP address to bind.
	Listen string
	// ModelDir is the model directory re-read by the {"cmd":"reload"}
	// control command; empty disables reload.
	ModelDir string
	// IdleExpiry evicts session monitors that have not seen an event
	// for this long.
	IdleExpiry time.Duration
	// CompactAfter collapses sessions idle this long into small
	// snapshots (0 disables compaction); see core.EngineConfig.
	CompactAfter time.Duration
	// MaxSessions caps resident sessions; 0 = uncapped. Events for new
	// sessions past the cap are shed and counted.
	MaxSessions int
	// MemBudget bounds the engine's accounted session memory in bytes;
	// 0 = unbounded. Past it, new sessions are refused and the
	// oldest-idle resident sessions are evicted.
	MemBudget int64
	// AlarmSendTimeout bounds how long a scoring shard waits on a slow
	// alarm consumer before dropping the alarm (counted in AlarmsShed);
	// 0 keeps the lossless blocking send.
	AlarmSendTimeout time.Duration
	// Shards is the scoring-engine shard count (0 = engine default).
	Shards int
	// QueueDepth is the per-shard event buffer (0 = engine default).
	QueueDepth int
	// Monitor is the per-session alarm configuration.
	Monitor core.MonitorConfig
	// Registry optionally supplies the model registry the engine reads
	// (the detector argument of NewServer is then ignored); nil wraps
	// the detector in a fresh single-generation registry. The adaptation
	// pipeline shares the registry with the engine so its swaps roll out
	// to new sessions.
	Registry *core.Registry
	// Adapter enables the {"cmd":"drift"} and {"cmd":"adapt"} control
	// commands; nil answers them with an error line.
	Adapter *pipeline.Adapter
	// Canary enables staged rollouts: {"cmd":"reload"} publishes the
	// model directory as a canary candidate (a fraction of new sessions)
	// instead of swapping it fleet-wide, and the "canary",
	// "canary-promote", and "canary-rollback" control commands inspect
	// and decide the pending rollout. Nil keeps the direct-swap reload.
	Canary *rollout.Controller
	// OnSessionEnd and RecordSessions are passed through to the engine
	// (the adapter's feed).
	OnSessionEnd   func(core.SessionSummary)
	RecordSessions bool
	// Logf receives operational log lines; nil silences them.
	Logf func(format string, args ...any)
}

// writeTimeout bounds every outbound write so a client that stops
// reading cannot backpressure a shard indefinitely.
const writeTimeout = 30 * time.Second

// Alarm is the JSON line written back to clients when a session looks
// suspicious; it is the engine's alarm record verbatim.
type Alarm = core.Alarm

// StatusReply is the JSON line written back for a status request: the
// engine counters (including the active backend and model version) plus
// daemon identity.
type StatusReply struct {
	Status core.EngineStats `json:"status"`
	Uptime string           `json:"uptime"`
}

// ReloadReply is the JSON line written back for a successful reload.
type ReloadReply struct {
	Reload ReloadStatus `json:"reload"`
}

// ReloadStatus describes the installed model generation. Canary marks a
// staged reload: the generation serves only Fraction of new sessions
// until the rollout controller promotes it.
type ReloadStatus struct {
	Version  uint64  `json:"version"`
	Backend  string  `json:"backend"`
	Clusters int     `json:"clusters"`
	Canary   bool    `json:"canary,omitempty"`
	Fraction float64 `json:"fraction,omitempty"`
	// Legacy warns that the directory predates artifact checksums and
	// loaded unverified.
	Legacy bool `json:"legacy,omitempty"`
}

// CanaryReply is the JSON line written back for a canary-status request.
type CanaryReply struct {
	Canary rollout.Status `json:"canary"`
}

// CanaryVerdictReply is the JSON line written back when an operator
// forces a promote or rollback.
type CanaryVerdictReply struct {
	Verdict *rollout.Verdict `json:"canary_verdict"`
}

// ErrorReply is the JSON line written back when a control command fails
// or is not recognized.
type ErrorReply struct {
	Error string `json:"error"`
}

// DriftReply is the JSON line written back for a drift-status request:
// the adaptation pipeline's full snapshot.
type DriftReply struct {
	Drift pipeline.Status `json:"drift"`
}

// AdaptReply is the JSON line written back for a completed manual
// adaptation cycle.
type AdaptReply struct {
	Adapt *pipeline.CycleReport `json:"adapt"`
}

// inboundLine is one decoded client line: control lines carry a "cmd"
// field and batch frames a "batch" array, neither of which events have,
// so a single unmarshal serves all three.
type inboundLine struct {
	Cmd   string            `json:"cmd"`
	Batch []actionlog.Event `json:"batch"`
	actionlog.Event
}

// maxFieldLen bounds the string fields of one inbound event. Session IDs
// key the engine's per-shard session maps and user/action strings ride on
// every event and alarm, so a client pushing megabyte identifiers (the
// scanner admits lines up to 1 MiB) would bloat session state far beyond
// what any legitimate log shipper emits.
const maxFieldLen = 1024

// maxBatchLen bounds the number of events one {"batch":[...]} frame may
// carry; longer frames are rejected whole. Together with maxFieldLen and
// the scanner's 1 MiB line cap this bounds per-line work and memory no
// matter what a client sends.
const maxBatchLen = 512

// connParser decodes client lines into commands or tokenized events,
// interning each action name against the engine's interner during the
// parse — the engine never resolves an action string again. It is
// per-connection state: the decode struct, the batch slice's backing
// array, and the tokenized-event scratch are all reused across lines,
// and batch frames take a zero-copy fast scan (fastBatch) that lifts
// known action names straight from the wire buffer into tokens without
// allocating them. Not safe for concurrent use.
type connParser struct {
	interner *actionlog.Interner
	in       inboundLine
	toks     []misusedBatch
	// hwm is the high-water mark of batch elements ever written: only
	// those can hold stale data, so a single-event line after a big
	// frame doesn't pay a full-capacity clear.
	hwm int
	// timeBuf is the fast scanner's timestamp re-quoting scratch.
	timeBuf []byte
	// noFast disables the fast scanner (tests pin fast/slow equality).
	noFast bool
}

// misusedBatch aliases the engine's pre-tokenized event type.
type misusedBatch = core.BatchEvent

func newConnParser(interner *actionlog.Interner) *connParser {
	return &connParser{interner: interner, toks: make([]misusedBatch, 0, maxBatchLen)}
}

// parseInbound decodes and validates one client line. It returns either
// a non-empty control command, or 1..maxBatchLen tokenized events each
// with a non-empty session ID and action; anything else is an error.
// Precedence when fields are mixed on one line: a "cmd" makes it a
// command (batch and event fields are ignored), a "batch" makes it a
// batch frame (inline event fields are ignored). The returned events
// alias parser-owned scratch: they are valid until the next parseInbound
// call (the engine copies what it keeps during submission). Events of
// known actions carry only the token (empty Action string); the action
// name is materialized solely when it falls outside the interner.
func (p *connParser) parseInbound(line []byte) (cmd string, evs []misusedBatch, err error) {
	if !p.noFast {
		if evs, ok := p.fastBatch(line); ok {
			return "", evs, nil
		}
	}
	// Reset the reused decode struct. The batch backing array must be
	// cleared through every element a previous frame wrote: json reuses
	// existing elements when refilling a slice, and a shorter event
	// object would otherwise inherit stale fields from the previous
	// frame.
	p.in.Cmd = ""
	p.in.Event = actionlog.Event{}
	scratch := p.in.Batch[:cap(p.in.Batch)]
	if p.hwm > len(scratch) {
		p.hwm = len(scratch)
	}
	clear(scratch[:p.hwm])
	p.in.Batch = scratch[:0]

	err = json.Unmarshal(line, &p.in)
	// encoding/json extends the slice length element by element, so even
	// an error mid-array leaves len covering every written element.
	if n := len(p.in.Batch); n > p.hwm {
		p.hwm = n
	}
	if err != nil {
		return "", nil, fmt.Errorf("misused: bad line: %w", err)
	}
	if p.in.Cmd != "" {
		if len(p.in.Cmd) > maxFieldLen {
			return "", nil, fmt.Errorf("misused: command length %d exceeds %d", len(p.in.Cmd), maxFieldLen)
		}
		return p.in.Cmd, nil, nil
	}
	if len(p.in.Batch) > 0 {
		if len(p.in.Batch) > maxBatchLen {
			return "", nil, fmt.Errorf("misused: batch length %d exceeds %d", len(p.in.Batch), maxBatchLen)
		}
		p.toks = p.toks[:0]
		for i := range p.in.Batch {
			if err := validateEvent(&p.in.Batch[i]); err != nil {
				return "", nil, fmt.Errorf("misused: batch event %d: %w", i, err)
			}
			p.toks = append(p.toks, p.tokenize(&p.in.Batch[i]))
		}
		return "", p.toks, nil
	}
	if err := validateEvent(&p.in.Event); err != nil {
		return "", nil, fmt.Errorf("misused: %w", err)
	}
	p.toks = append(p.toks[:0], p.tokenize(&p.in.Event))
	return "", p.toks, nil
}

// tokenize interns one validated event. Events of known actions carry
// only the token — the Action string is dropped so both parse paths
// produce the same shape and the engine's copies stay string-free.
func (p *connParser) tokenize(ev *actionlog.Event) misusedBatch {
	be := misusedBatch{Ev: *ev, Tok: p.interner.Intern(ev.Action)}
	if be.Tok >= 0 {
		be.Ev.Action = ""
	}
	return be
}

// validateEvent enforces the per-event protocol bounds.
func validateEvent(ev *actionlog.Event) error {
	if ev.SessionID == "" || ev.Action == "" {
		return fmt.Errorf("event missing session_id or action")
	}
	for _, f := range []struct{ name, val string }{
		{"session_id", ev.SessionID}, {"user", ev.User}, {"action", ev.Action},
	} {
		if len(f.val) > maxFieldLen {
			return fmt.Errorf("event %s length %d exceeds %d", f.name, len(f.val), maxFieldLen)
		}
	}
	return nil
}

// Server is the TCP ingestion daemon: connections are thin decoders that
// submit events to the sharded scoring engine and stream back the alarms
// raised for the sessions they carry.
type Server struct {
	cfg    ServerConfig
	engine *core.Engine
	ln     net.Listener
	start  time.Time
	wg     sync.WaitGroup
}

// NewServer binds the listen address and starts the scoring engine.
func NewServer(det *core.Detector, cfg ServerConfig) (*Server, error) {
	if cfg.IdleExpiry <= 0 {
		return nil, fmt.Errorf("misused: IdleExpiry must be positive, got %v", cfg.IdleExpiry)
	}
	ecfg := core.EngineConfig{
		Shards:           cfg.Shards,
		QueueDepth:       cfg.QueueDepth,
		IdleExpiry:       cfg.IdleExpiry,
		CompactAfter:     cfg.CompactAfter,
		MaxSessions:      cfg.MaxSessions,
		MemBudget:        cfg.MemBudget,
		AlarmSendTimeout: cfg.AlarmSendTimeout,
		Monitor:          cfg.Monitor,
		OnSessionEnd:     cfg.OnSessionEnd,
		RecordSessions:   cfg.RecordSessions,
		Logf:             cfg.Logf,
	}
	var engine *core.Engine
	var err error
	if cfg.Registry != nil {
		engine, err = core.NewEngineRegistry(cfg.Registry, ecfg)
	} else {
		engine, err = core.NewEngine(det, ecfg)
	}
	if err != nil {
		return nil, fmt.Errorf("misused: start engine: %w", err)
	}
	ln, err := net.Listen("tcp", cfg.Listen)
	if err != nil {
		engine.Close()
		return nil, fmt.Errorf("misused: listen %s: %w", cfg.Listen, err)
	}
	return &Server{cfg: cfg, engine: engine, ln: ln, start: time.Now()}, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Stats snapshots the scoring-engine counters.
func (s *Server) Stats() core.EngineStats { return s.engine.Stats() }

// SessionCount reports the number of live session monitors.
func (s *Server) SessionCount() int { return int(s.engine.Stats().SessionsLive) }

// Serve accepts connections until the context is canceled, then closes
// the listener, waits for every connection handler to finish, and drains
// the engine.
func (s *Server) Serve(ctx context.Context) error {
	done := make(chan struct{})
	go func() {
		defer close(done)
		<-ctx.Done()
		s.ln.Close()
	}()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			select {
			case <-ctx.Done():
				s.wg.Wait()
				s.engine.Close()
				<-done
				return nil
			default:
				// Listener failure: return without closing the engine —
				// live handlers may still be submitting and detaching,
				// and the daemon exits on a Serve error anyway.
				return fmt.Errorf("misused: accept: %w", err)
			}
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handle(ctx, conn)
		}()
	}
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// handle processes one client connection: decode events, submit them to
// the engine, write back the alarms the engine raises for this
// connection's sessions. One writer goroutine owns the outbound side so
// alarm lines and status replies never interleave mid-line.
func (s *Server) handle(ctx context.Context, conn net.Conn) {
	defer conn.Close()
	connDone := make(chan struct{})
	defer close(connDone)
	go func() {
		// Unblock both reads and stuck writes on shutdown, so a client
		// that stopped reading cannot wedge the writer (and through the
		// sink, a shard) during drain. Exits with the connection so
		// long-lived daemons don't park one goroutine per connection
		// ever accepted.
		select {
		case <-ctx.Done():
			conn.SetDeadline(time.Now())
		case <-connDone:
		}
	}()

	alarms := make(chan Alarm, 64)
	var writeMu sync.Mutex
	enc := json.NewEncoder(conn)
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		// After the first write failure or once shutdown begins, stop
		// encoding and discard: retrying a dead connection would stall
		// the drain up to writeTimeout per alarm, and the channel must
		// keep draining so the engine is never blocked on this sink.
		dead := false
		for a := range alarms {
			if dead || ctx.Err() != nil {
				continue
			}
			writeMu.Lock()
			// Bound every write: a client that stops reading gets its
			// alarms dropped after the deadline instead of wedging this
			// writer, the sink, and through it a whole shard (and every
			// other connection hashed onto that shard).
			conn.SetWriteDeadline(time.Now().Add(writeTimeout))
			err := enc.Encode(&a)
			writeMu.Unlock()
			if err != nil {
				s.logf("write alarm to %s: %v", conn.RemoteAddr(), err)
				dead = true
			}
		}
	}()

	// Per-connection parse and submission scratch: the decode struct and
	// the tokenized-event buffer live for the whole connection, so
	// steady-state ingestion re-uses one set of buffers per frame
	// instead of allocating per event. The parser interns each action
	// name against the engine's interner during the parse — the engine
	// receives pre-tokenized events and never resolves an action string
	// again.
	parser := newConnParser(s.engine.Interner())
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		cmd, evs, err := parser.parseInbound(line)
		if err != nil {
			s.logf("bad event from %s: %v", conn.RemoteAddr(), err)
			continue
		}
		if cmd != "" {
			s.handleCommand(cmd, enc, &writeMu, conn)
			continue
		}
		if err := s.engine.SubmitTokens(ctx, evs, alarms); err != nil {
			s.logf("session %s: %v", evs[0].Ev.SessionID, err)
			continue
		}
	}

	// Reads are over: after Detach returns, every event this connection
	// submitted has been scored and no shard will send here again, so
	// closing the alarm channel is safe and flushes the writer.
	s.engine.Detach(alarms)
	close(alarms)
	<-writerDone
}

// handleCommand answers a control line ({"cmd":"status"}, "reload",
// "drift", or "adapt"). Unknown commands get a JSON error line back, so
// a misbehaving client sees its mistake instead of silence.
func (s *Server) handleCommand(cmd string, enc *json.Encoder, writeMu *sync.Mutex, conn net.Conn) {
	switch cmd {
	case "status":
		s.writeReply(enc, writeMu, conn, &StatusReply{
			Status: s.engine.Stats(),
			Uptime: time.Since(s.start).Round(time.Millisecond).String(),
		})
	case "reload":
		s.handleReload(enc, writeMu, conn)
	case "drift":
		if s.cfg.Adapter == nil {
			s.writeReply(enc, writeMu, conn, &ErrorReply{Error: "adaptation disabled (start misused with -adapt)"})
			return
		}
		s.writeReply(enc, writeMu, conn, &DriftReply{Drift: s.cfg.Adapter.Status()})
	case "adapt":
		s.handleAdapt(enc, writeMu, conn)
	case "canary":
		if s.cfg.Canary == nil {
			s.writeReply(enc, writeMu, conn, &ErrorReply{Error: "canary rollouts disabled (start misused with -canary-frac)"})
			return
		}
		s.writeReply(enc, writeMu, conn, &CanaryReply{Canary: s.cfg.Canary.Status()})
	case "canary-promote", "canary-rollback":
		s.handleCanaryDecision(cmd, enc, writeMu, conn)
	default:
		s.logf("unknown command %q from %s", cmd, conn.RemoteAddr())
		s.writeReply(enc, writeMu, conn, &ErrorReply{Error: fmt.Sprintf("unknown command %q", cmd)})
	}
}

// handleAdapt runs one manual adaptation cycle synchronously on the
// connection's goroutine (retraining takes seconds to minutes; the
// client sets its own timeout) and reports the cycle outcome. A
// guardrail refusal is a successful reply — the report says so.
func (s *Server) handleAdapt(enc *json.Encoder, writeMu *sync.Mutex, conn net.Conn) {
	if s.cfg.Adapter == nil {
		s.writeReply(enc, writeMu, conn, &ErrorReply{Error: "adaptation disabled (start misused with -adapt)"})
		return
	}
	rep, err := s.cfg.Adapter.Cycle("manual")
	if err != nil {
		s.logf("manual adaptation cycle: %v", err)
		s.writeReply(enc, writeMu, conn, &ErrorReply{Error: fmt.Sprintf("adapt: %v", err)})
		return
	}
	if rep.Swapped {
		s.logf("manual adaptation cycle swapped in generation %d (AUC %.3f vs %.3f)", rep.NewVersion, rep.NewAUC, rep.OldAUC)
	} else {
		s.logf("manual adaptation cycle refused: %s", rep.Refused)
	}
	s.writeReply(enc, writeMu, conn, &AdaptReply{Adapt: rep})
}

// handleReload re-reads the model directory — verifying its manifest
// checksums first; torn, truncated, or tampered directories are refused
// before any weight is touched — and installs the new generation:
// directly into the engine registry without a rollout controller
// (together with the directory's calibrated thresholds.json when
// present), or as a canary candidate serving a fraction of new sessions
// with one. Sessions already streaming keep their pinned generation.
func (s *Server) handleReload(enc *json.Encoder, writeMu *sync.Mutex, conn net.Conn) {
	if s.cfg.ModelDir == "" {
		s.writeReply(enc, writeMu, conn, &ErrorReply{Error: "reload unavailable: server started without a model directory"})
		return
	}
	rep, err := rollout.Verify(s.cfg.ModelDir)
	if err != nil {
		s.logf("reload %s: %v", s.cfg.ModelDir, err)
		s.writeReply(enc, writeMu, conn, &ErrorReply{Error: fmt.Sprintf("reload: %v", err)})
		return
	}
	if rep.Legacy {
		s.logf("reload %s: manifest predates artifact checksums; loading unverified (re-save the model to add them)", s.cfg.ModelDir)
	}
	if s.cfg.Canary != nil {
		s.handleCanaryReload(enc, writeMu, conn, rep.Legacy)
		return
	}
	mv, err := s.engine.Registry().LoadFrom(s.cfg.ModelDir)
	if err != nil {
		s.logf("reload %s: %v", s.cfg.ModelDir, err)
		s.writeReply(enc, writeMu, conn, &ErrorReply{Error: fmt.Sprintf("reload: %v", err)})
		return
	}
	s.logf("reloaded model from %s: version %d, backend %s, %d clusters",
		s.cfg.ModelDir, mv.Version, mv.Det.Backend(), mv.Det.ClusterCount())
	s.writeReply(enc, writeMu, conn, &ReloadReply{Reload: ReloadStatus{
		Version:  mv.Version,
		Backend:  mv.Det.Backend(),
		Clusters: mv.Det.ClusterCount(),
		Legacy:   rep.Legacy,
	}})
}

// handleCanaryReload publishes the model directory as the canary
// candidate: a fraction of new sessions pins to it while the comparator
// gathers evidence; promotion (or quarantine) comes later.
func (s *Server) handleCanaryReload(enc *json.Encoder, writeMu *sync.Mutex, conn net.Conn, legacy bool) {
	det, monitor, err := core.LoadGeneration(s.cfg.ModelDir)
	if err != nil {
		s.logf("reload %s: %v", s.cfg.ModelDir, err)
		s.writeReply(enc, writeMu, conn, &ErrorReply{Error: fmt.Sprintf("reload: %v", err)})
		return
	}
	mv, err := s.cfg.Canary.Publish(det, monitor, s.cfg.ModelDir, s.cfg.ModelDir)
	if err != nil {
		s.logf("reload %s: %v", s.cfg.ModelDir, err)
		s.writeReply(enc, writeMu, conn, &ErrorReply{Error: fmt.Sprintf("reload: %v", err)})
		return
	}
	s.writeReply(enc, writeMu, conn, &ReloadReply{Reload: ReloadStatus{
		Version:  mv.Version,
		Backend:  mv.Det.Backend(),
		Clusters: mv.Det.ClusterCount(),
		Canary:   true,
		Fraction: s.cfg.Canary.Fraction(),
		Legacy:   legacy,
	}})
}

// handleCanaryDecision force-promotes or force-rolls-back the pending
// canary on operator demand and replies with the applied verdict.
func (s *Server) handleCanaryDecision(cmd string, enc *json.Encoder, writeMu *sync.Mutex, conn net.Conn) {
	if s.cfg.Canary == nil {
		s.writeReply(enc, writeMu, conn, &ErrorReply{Error: "canary rollouts disabled (start misused with -canary-frac)"})
		return
	}
	var v *rollout.Verdict
	var err error
	if cmd == "canary-promote" {
		v, err = s.cfg.Canary.Promote()
	} else {
		v, err = s.cfg.Canary.Rollback()
	}
	if err != nil {
		s.writeReply(enc, writeMu, conn, &ErrorReply{Error: fmt.Sprintf("%s: %v", cmd, err)})
		return
	}
	s.writeReply(enc, writeMu, conn, &CanaryVerdictReply{Verdict: v})
}

// writeReply encodes one control reply under the connection's write lock
// and deadline, so replies never interleave with alarm lines mid-line.
func (s *Server) writeReply(enc *json.Encoder, writeMu *sync.Mutex, conn net.Conn, v any) {
	writeMu.Lock()
	conn.SetWriteDeadline(time.Now().Add(writeTimeout))
	err := enc.Encode(v)
	writeMu.Unlock()
	if err != nil {
		s.logf("write reply to %s: %v", conn.RemoteAddr(), err)
	}
}
