package main

import (
	"bufio"
	"encoding/json"
	"net"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"misusedetect/internal/core"
	"misusedetect/internal/rollout"
)

// controlLine sends one control command and decodes the single reply
// line into out, failing on an {"error":...} line unless out is an
// *ErrorReply.
func controlLine(t *testing.T, conn net.Conn, sc *bufio.Scanner, cmd string, out any) {
	t.Helper()
	if _, err := conn.Write([]byte("{\"cmd\":\"" + cmd + "\"}\n")); err != nil {
		t.Fatal(err)
	}
	if !sc.Scan() {
		t.Fatalf("no reply for %q: %v", cmd, sc.Err())
	}
	if err := json.Unmarshal(sc.Bytes(), out); err != nil {
		t.Fatalf("reply for %q: %q: %v", cmd, sc.Text(), err)
	}
}

// TestServerCanaryCommands covers the staged-rollout wire surface: with
// a rollout controller wired in, reload publishes the model directory
// as a canary candidate, "canary" reports the pending rollout, and
// "canary-rollback" quarantines the directory — the reload-as-canary
// path the OPERATIONS.md runbook describes.
func TestServerCanaryCommands(t *testing.T) {
	det, _ := tinyDetector(t)
	dir := filepath.Join(t.TempDir(), "model")
	if err := det.Save(dir); err != nil {
		t.Fatal(err)
	}
	reg, err := core.NewRegistry(det)
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := rollout.NewController(reg, rollout.Config{Fraction: 0.25, MinSessions: 500, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(det, ServerConfig{
		Listen:       "127.0.0.1:0",
		ModelDir:     dir,
		IdleExpiry:   time.Minute,
		Monitor:      core.DefaultMonitorConfig(),
		Registry:     reg,
		Canary:       ctrl,
		OnSessionEnd: ctrl.OnSessionEnd,
		Logf:         t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	shutdown := startServer(t, srv)
	defer shutdown()

	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(30 * time.Second))
	sc := bufio.NewScanner(conn)

	// Idle controller: status says inactive, decisions are errors.
	var cr CanaryReply
	controlLine(t, conn, sc, "canary", &cr)
	if cr.Canary.Active || cr.Canary.ServingVersion != 1 {
		t.Fatalf("idle canary status: %+v", cr.Canary)
	}
	var er ErrorReply
	controlLine(t, conn, sc, "canary-promote", &er)
	if !strings.Contains(er.Error, "no canary") {
		t.Fatalf("promote with nothing pending: %+v", er)
	}

	// Reload with a controller publishes a canary instead of swapping.
	var rr ReloadReply
	controlLine(t, conn, sc, "reload", &rr)
	if !rr.Reload.Canary || rr.Reload.Version != 2 || rr.Reload.Fraction != 0.25 {
		t.Fatalf("canary reload reply: %+v", rr.Reload)
	}
	if reg.Current().Version != 1 {
		t.Fatalf("canary reload swapped serving to %d", reg.Current().Version)
	}
	controlLine(t, conn, sc, "canary", &cr)
	if !cr.Canary.Active || cr.Canary.CandidateVersion != 2 || cr.Canary.CandidateDir != dir {
		t.Fatalf("pending canary status: %+v", cr.Canary)
	}

	// A second reload while the rollout is undecided is refused.
	controlLine(t, conn, sc, "reload", &er)
	if !strings.Contains(er.Error, "pending") {
		t.Fatalf("reload during pending rollout: %+v", er)
	}

	// Operator rollback: verdict comes back, and the model directory
	// itself is quarantined (the reload-as-canary recovery case).
	var vr CanaryVerdictReply
	controlLine(t, conn, sc, "canary-rollback", &vr)
	if vr.Verdict == nil || vr.Verdict.Decision != "rollback" || !strings.Contains(vr.Verdict.Reason, "operator rollback") {
		t.Fatalf("rollback verdict: %+v", vr.Verdict)
	}
	wantDest := filepath.Join(filepath.Dir(dir), "quarantine", filepath.Base(dir))
	if vr.Verdict.QuarantinedDir != wantDest {
		t.Fatalf("quarantined dir %q, want %q", vr.Verdict.QuarantinedDir, wantDest)
	}
	if _, err := os.Stat(dir); !os.IsNotExist(err) {
		t.Fatal("model dir still in place after rollback quarantine")
	}
	if _, err := os.Stat(filepath.Join(wantDest, rollout.VerdictFile)); err != nil {
		t.Fatalf("verdict not recorded in quarantine: %v", err)
	}
	if reg.Current().Version != 1 {
		t.Fatal("rollback moved the serving generation")
	}

	// With the directory quarantined, the next reload fails verification
	// — the integrity gate, not a half-loaded model.
	controlLine(t, conn, sc, "reload", &er)
	if er.Error == "" {
		t.Fatal("reload of a quarantined model dir must fail")
	}
}

// TestServerCanaryDisabled: without -canary-frac the canary commands
// answer with a descriptive error line.
func TestServerCanaryDisabled(t *testing.T) {
	det, _ := tinyDetector(t)
	srv, err := NewServer(det, ServerConfig{
		Listen:     "127.0.0.1:0",
		IdleExpiry: time.Minute,
		Monitor:    core.DefaultMonitorConfig(),
	})
	if err != nil {
		t.Fatal(err)
	}
	shutdown := startServer(t, srv)
	defer shutdown()

	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(10 * time.Second))
	sc := bufio.NewScanner(conn)
	for _, cmd := range []string{"canary", "canary-promote", "canary-rollback"} {
		var er ErrorReply
		controlLine(t, conn, sc, cmd, &er)
		if !strings.Contains(er.Error, "-canary-frac") {
			t.Fatalf("%s reply %+v does not point at -canary-frac", cmd, er)
		}
	}
}
