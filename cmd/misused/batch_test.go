package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"math/rand"
	"net"
	"testing"
	"time"

	"misusedetect/internal/actionlog"
	"misusedetect/internal/core"
)

// wireBatchFrame is the client-side encoding of one batch frame.
type wireBatchFrame struct {
	Batch []actionlog.Event `json:"batch"`
}

// collectAlarms reads alarm lines for one session until the stream has
// been quiet past the deadline, returning "kind@position" markers in
// order. The connection is dedicated to one phase: the sticky read
// timeout ends it.
func collectAlarms(t *testing.T, sc *bufio.Scanner, conn net.Conn, session string) []string {
	t.Helper()
	var got []string
	for {
		conn.SetReadDeadline(time.Now().Add(700 * time.Millisecond))
		if !sc.Scan() {
			return got
		}
		var a Alarm
		if err := json.Unmarshal(sc.Bytes(), &a); err != nil {
			t.Fatalf("bad alarm line %q: %v", sc.Text(), err)
		}
		if a.SessionID == session {
			got = append(got, fmt.Sprintf("%s@%d", a.Kind, a.Position))
		}
	}
}

// TestServerBatchFrames pins the wire batch frame end to end: a session
// streamed as {"batch":[...]} frames produces exactly the alarms the
// same session produces as per-event lines, an oversized frame is
// rejected without killing the connection, and the daemon's status
// counters expose the batch and interner activity.
func TestServerBatchFrames(t *testing.T) {
	det, sessions := tinyDetector(t)
	srv, err := NewServer(det, ServerConfig{
		Listen:     "127.0.0.1:0",
		IdleExpiry: time.Minute,
		Shards:     3,
		Monitor:    core.DefaultMonitorConfig(),
	})
	if err != nil {
		t.Fatal(err)
	}
	shutdown := startServer(t, srv)
	defer shutdown()

	// A normal prefix followed by uniform noise: reliably alarming.
	names := det.Vocabulary().Actions()
	rng := rand.New(rand.NewSource(9))
	var actions []string
	actions = append(actions, sessions[0].Actions...)
	for i := 0; i < 30; i++ {
		actions = append(actions, names[rng.Intn(len(names))])
	}
	mkEvents := func(session string) []actionlog.Event {
		evs := make([]actionlog.Event, len(actions))
		for i, a := range actions {
			evs[i] = actionlog.Event{Time: time.Unix(int64(i), 0), User: "u", SessionID: session, Action: a}
		}
		return evs
	}
	dial := func() (net.Conn, *json.Encoder, *bufio.Scanner) {
		conn, err := net.Dial("tcp", srv.Addr())
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { conn.Close() })
		sc := bufio.NewScanner(conn)
		sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
		return conn, json.NewEncoder(conn), sc
	}

	// Phase 1 — reference: the session as one line per event.
	conn1, enc1, sc1 := dial()
	for _, ev := range mkEvents("single-s") {
		if err := enc1.Encode(&ev); err != nil {
			t.Fatal(err)
		}
	}
	want := collectAlarms(t, sc1, conn1, "single-s")
	if len(want) == 0 {
		t.Fatal("per-event path raised no alarms; the comparison would be vacuous")
	}

	// Phase 2 — the same actions as batch frames of mixed sizes.
	conn2, enc2, sc2 := dial()
	batchEvs := mkEvents("batch-s")
	for off := 0; off < len(batchEvs); {
		n := 1 + rng.Intn(7)
		if off+n > len(batchEvs) {
			n = len(batchEvs) - off
		}
		if err := enc2.Encode(&wireBatchFrame{Batch: batchEvs[off : off+n]}); err != nil {
			t.Fatal(err)
		}
		off += n
	}
	got := collectAlarms(t, sc2, conn2, "batch-s")
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("batch alarms diverge from per-event alarms:\nsingle: %v\nbatch:  %v", want, got)
	}

	// Phase 3 — an oversized frame must be dropped whole, and the
	// connection must survive to serve a status round trip.
	conn3, enc3, sc3 := dial()
	big := make([]actionlog.Event, maxBatchLen+1)
	for i := range big {
		big[i] = actionlog.Event{SessionID: "big-s", Action: names[0]}
	}
	if err := enc3.Encode(&wireBatchFrame{Batch: big}); err != nil {
		t.Fatal(err)
	}
	if _, err := fmt.Fprintf(conn3, "{\"cmd\":\"status\"}\n"); err != nil {
		t.Fatal(err)
	}
	conn3.SetReadDeadline(time.Now().Add(5 * time.Second))
	var st *core.EngineStats
	for sc3.Scan() {
		var probe struct {
			Status *core.EngineStats `json:"status"`
		}
		if err := json.Unmarshal(sc3.Bytes(), &probe); err == nil && probe.Status != nil {
			st = probe.Status
			break
		}
	}
	if st == nil {
		t.Fatalf("no status reply after oversized frame: %v", sc3.Err())
	}
	if st.EventsProcessed != uint64(2*len(actions)) {
		t.Fatalf("daemon processed %d events, want %d (the oversized frame must not count)", st.EventsProcessed, 2*len(actions))
	}
	if st.BatchesSubmitted == 0 {
		t.Fatal("status reports no batches despite batch frames")
	}
	if st.InternedActions != det.Vocabulary().Size() || st.LearnedActions != 0 {
		t.Fatalf("interner counters = %d/%d, want %d/0", st.InternedActions, st.LearnedActions, det.Vocabulary().Size())
	}
}
