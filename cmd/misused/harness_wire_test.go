package main

import (
	"testing"
	"time"

	"misusedetect/internal/baseline"
	"misusedetect/internal/core"
	"misusedetect/internal/harness"
)

// corpusServer trains an ngram detector on the harness corpus split,
// calibrates its thresholds, and serves it — the deployed configuration
// the wire harness is meant to exercise.
func corpusServer(t *testing.T) (*Server, *harness.Traffic, func()) {
	t.Helper()
	tr, err := harness.CorpusTraffic(2)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.ScaledConfig(tr.Vocab.Size(), len(tr.Train), 8, 2, 11)
	cfg.Backend = baseline.BackendNGram
	det, err := core.TrainDetector(cfg, tr.Vocab, tr.Train, nil)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(det, ServerConfig{
		Listen:     "127.0.0.1:0",
		IdleExpiry: time.Minute,
		Shards:     3,
		Monitor:    core.DefaultMonitorConfig(),
	})
	if err != nil {
		t.Fatal(err)
	}
	shutdown := startServer(t, srv)
	return srv, tr, shutdown
}

// TestHarnessReplayWire closes the loop at the wire level: labeled
// corpus traffic streams over TCP to a live daemon and the harness folds
// the alarm lines back into a detection report.
func TestHarnessReplayWire(t *testing.T) {
	srv, tr, shutdown := corpusServer(t)
	defer shutdown()

	rep, err := harness.ReplayWire(srv.Addr(), tr.EvalSessions(), 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Backend != baseline.BackendNGram || rep.Shards != 3 || rep.ModelVersion != 1 {
		t.Fatalf("wire report daemon identity %+v", rep)
	}
	if rep.Events == 0 || rep.AnomalySessions != len(tr.Anomalies) || rep.NormalSessions != len(tr.Holdout) {
		t.Fatalf("wire report shape %+v", rep)
	}
	if rep.DetectedAnomalies == 0 {
		t.Fatal("wire replay detected no anomalous sessions")
	}
	if rep.MeanTimeToDetection <= 0 {
		t.Fatalf("mean time-to-detection %v", rep.MeanTimeToDetection)
	}
	if rep.AlarmsReceived == 0 {
		t.Fatal("no alarm lines received")
	}
	// Every detected kind must be a known corpus kind.
	for kind, n := range rep.DetectedByKind {
		if n <= 0 {
			t.Fatalf("kind %q counted %d", kind, n)
		}
	}
}

// TestHarnessBenchWire measures wire-to-scored throughput against the
// live daemon and sanity-checks the latency distribution.
func TestHarnessBenchWire(t *testing.T) {
	srv, tr, shutdown := corpusServer(t)
	defer shutdown()

	results, err := harness.BenchWire(srv.Addr(), tr, harness.BenchOptions{Events: 1500, BatchSizes: []int{1, 32}}, 60*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("got %d wire bench results, want one per batch size", len(results))
	}
	for i, res := range results {
		if res.Mode != "wire" || res.Backend != baseline.BackendNGram || res.Shards != 3 {
			t.Fatalf("wire bench identity %+v", res)
		}
		if res.Batch != []int{1, 32}[i] {
			t.Fatalf("wire bench batch = %d, want %d", res.Batch, []int{1, 32}[i])
		}
		if res.Events != 1500 || res.Sessions == 0 {
			t.Fatalf("wire bench load %+v", res)
		}
		if res.EventsPerSec <= 0 || res.WallSeconds <= 0 {
			t.Fatalf("wire bench throughput %+v", res)
		}
		if res.Ingest.P50 <= 0 || res.Ingest.P50 > res.Ingest.P99+1e-9 {
			t.Fatalf("wire bench ingest latency %+v", res.Ingest)
		}
	}
}
