package main

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"misusedetect/internal/actionlog"
)

// fuzzVocab is the seed vocabulary fuzz parsers intern against; every
// other action name is learned on sight, so token assignments depend
// only on the order names appear — identical across parser instances
// fed the same input.
func fuzzVocab(t testing.TB) *actionlog.Vocabulary {
	t.Helper()
	v, err := actionlog.NewVocabulary([]string{"ActionSearchUsr", "a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func fuzzParser(t testing.TB, noFast bool) *connParser {
	p := newConnParser(actionlog.NewInterner(fuzzVocab(t)))
	p.noFast = noFast
	return p
}

// batchEventsEqual compares two parsed event slices field by field,
// resolving tokens through each parser's own interner so the comparison
// is by action name, not by interner identity.
func batchEventsEqual(a, b []misusedBatch, ai, bi *actionlog.Interner) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Ev.SessionID != b[i].Ev.SessionID || a[i].Ev.User != b[i].Ev.User ||
			!a[i].Ev.Time.Equal(b[i].Ev.Time) || a[i].Ev.Action != b[i].Ev.Action {
			return false
		}
		an, aok := ai.Snapshot().Name(a[i].Tok)
		bn, bok := bi.Snapshot().Name(b[i].Tok)
		if aok != bok || an != bn {
			return false
		}
	}
	return true
}

// FuzzServerLine fuzzes the daemon's wire-protocol line parser: whatever
// a client sends, parseInbound must return without panicking and must
// uphold the dispatch invariant the read loop relies on — a nil error
// yields either a control command or 1..maxBatchLen tokenized events,
// never both and never neither, with every accepted field bounded. Two
// differentials run on every input: the zero-copy fast scanner against
// the reflective slow path (they must agree on acceptance and values),
// and a scratch-reuse check against a parser pre-warmed with a full
// batch frame (any stale-state leak between lines is a failure).
func FuzzServerLine(f *testing.F) {
	f.Add([]byte(`{"cmd":"status"}`))
	f.Add([]byte(`{"cmd":"reload"}`))
	f.Add([]byte(`{"time":"2019-03-01T10:00:00Z","user":"alice","session_id":"s-1","action":"ActionSearchUsr"}`))
	f.Add([]byte(`{"session_id":"s","action":"a","cmd":""}`))
	f.Add([]byte(`{"action":""}`))
	f.Add([]byte(`{not json}`))
	f.Add([]byte(``))
	f.Add([]byte(`null`))
	f.Add([]byte(`{"time":"not-a-time","session_id":"s","action":"a"}`))
	f.Add([]byte(`{"cmd":"` + strings.Repeat("x", 2000) + `"}`))
	f.Add([]byte(`{"session_id":"` + strings.Repeat("s", 2000) + `","action":"a"}`))
	f.Add([]byte("{\"session_id\":\"s\",\"action\":\"a\",\"user\":\"\x00￿\"}"))
	// Batch-frame seeds: well-formed, empty, truncated array, an
	// oversized member field, a frame over the length cap, mixed
	// control/event frames, escapes and invalid UTF-8 (fast-path
	// fallbacks), nested junk.
	f.Add([]byte(`{"batch":[{"session_id":"s-1","action":"a"},{"session_id":"s-2","action":"b","user":"u"}]}`))
	f.Add([]byte(`{"batch":[{"time":"2019-03-01T10:00:00Z","session_id":"s","action":"zz-learned"}]}`))
	f.Add([]byte(`{"batch":[]}`))
	f.Add([]byte(`{"batch":[{"session_id":"s","action":"a"}`))
	f.Add([]byte(`{"batch":[{"session_id":"s","action":"a"},{"session_id":"s"}]}`))
	f.Add([]byte(`{"batch":[{"session_id":"` + strings.Repeat("s", 2000) + `","action":"a"}]}`))
	f.Add([]byte(oversizedBatchLine(600)))
	f.Add([]byte(`{"cmd":"status","batch":[{"session_id":"s","action":"a"}]}`))
	f.Add([]byte(`{"batch":[{"session_id":"s","action":"a"}],"session_id":"top","action":"t"}`))
	f.Add([]byte(`{"batch":[null,42,"x"]}`))
	f.Add([]byte(`{"batch":{"session_id":"s","action":"a"}}`))
	f.Add([]byte(`{"batch":[{"session_id":"sA","action":"a"}]}`))
	f.Add([]byte("{\"batch\":[{\"session_id\":\"s\xff\",\"action\":\"a\"}]}"))
	f.Add([]byte(`{"batch":[{"session_id":"s","action":"a","extra":"x"}]}`))
	f.Add([]byte(`{"batch":[{"session_id":"s","action":"a","time":"2019-03-01T10:00:00.123+02:00"}]} `))
	f.Add([]byte(`{"batch":[{"session_id":"s","action":"a","time":""}]}`))
	f.Fuzz(func(t *testing.T, line []byte) {
		fast := fuzzParser(t, false)
		cmd, evs, err := fast.parseInbound(line)

		// Differential 1: the zero-copy scanner against the reflective
		// decoder — acceptance and values must match exactly.
		slow := fuzzParser(t, true)
		sCmd, sEvs, sErr := slow.parseInbound(line)
		if (err == nil) != (sErr == nil) || cmd != sCmd || !batchEventsEqual(evs, sEvs, fast.interner, slow.interner) {
			t.Fatalf("fast path diverges from slow path:\nfast: cmd=%q evs=%+v err=%v\nslow: cmd=%q evs=%+v err=%v",
				cmd, evs, err, sCmd, sEvs, sErr)
		}

		// Differential 2: a parser that just decoded an unrelated full
		// frame must parse this line identically (scratch-reuse leak).
		warm := warmParser(t)
		wCmd, wEvs, wErr := warm.parseInbound(line)
		if (err == nil) != (wErr == nil) || cmd != wCmd || !batchEventsEqual(evs, wEvs, fast.interner, warm.interner) {
			t.Fatalf("scratch reuse changed the parse:\nfresh: cmd=%q evs=%+v err=%v\nwarm:  cmd=%q evs=%+v err=%v",
				cmd, evs, err, wCmd, wEvs, wErr)
		}

		if err != nil {
			if cmd != "" || len(evs) != 0 {
				t.Fatalf("error path leaked values: cmd=%q evs=%+v", cmd, evs)
			}
			return
		}
		isCmd := cmd != ""
		isEvents := len(evs) >= 1
		if isCmd == isEvents {
			t.Fatalf("accepted line is neither exactly a command nor exactly events: cmd=%q evs=%+v line=%q", cmd, evs, line)
		}
		if len(cmd) > maxFieldLen {
			t.Fatalf("accepted command of length %d exceeds bound %d", len(cmd), maxFieldLen)
		}
		if len(evs) > maxBatchLen {
			t.Fatalf("accepted batch of length %d exceeds bound %d", len(evs), maxBatchLen)
		}
		for _, ev := range evs {
			if ev.Ev.SessionID == "" {
				t.Fatalf("accepted event missing session: %+v", ev)
			}
			// Tokenized contract: a known action carries the token and
			// no string; an unknown one carries the name.
			name := ev.Ev.Action
			if ev.Tok >= 0 {
				if name != "" {
					t.Fatalf("tokenized event retains action string: %+v", ev)
				}
				var ok bool
				if name, ok = fast.interner.Snapshot().Name(ev.Tok); !ok {
					t.Fatalf("accepted token %d outside the interner", ev.Tok)
				}
			}
			if name == "" {
				t.Fatalf("accepted event with neither token nor action: %+v", ev)
			}
			for _, s := range []string{ev.Ev.SessionID, ev.Ev.User, name} {
				if len(s) > maxFieldLen {
					t.Fatalf("accepted field of length %d exceeds bound %d", len(s), maxFieldLen)
				}
			}
		}
	})
}

// warmParser returns a parser that has already decoded a maximal batch
// frame (through the slow path) with every field populated, so any
// stale-state leak across lines has the richest possible material to
// surface with.
func warmParser(t *testing.T) *connParser {
	t.Helper()
	p := fuzzParser(t, false)
	var sb strings.Builder
	sb.WriteString(`{"batch":[`)
	for i := 0; i < 8; i++ {
		if i > 0 {
			sb.WriteByte(',')
		}
		// The \u escape forces the reflective path, so its scratch is
		// the one left warm.
		fmt.Fprintf(&sb, `{"time":"2019-03-01T10:00:0%d+05:00","user":"warm-user-%d","session_id":"warm-A%d","action":"warm-action-%d"}`, i, i, i, i)
	}
	sb.WriteString(`]}`)
	if _, _, err := p.parseInbound([]byte(sb.String())); err != nil {
		t.Fatalf("warm-up frame rejected: %v", err)
	}
	return p
}

// oversizedBatchLine builds a syntactically valid batch frame of n
// events (past the maxBatchLen cap for n > maxBatchLen).
func oversizedBatchLine(n int) string {
	var sb strings.Builder
	sb.WriteString(`{"batch":[`)
	for i := 0; i < n; i++ {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, `{"session_id":"s-%d","action":"a"}`, i)
	}
	sb.WriteString(`]}`)
	return sb.String()
}

// TestParseInboundFieldBounds pins the protocol-hardening bounds the
// fuzz target asserts: oversized identifiers and frames are rejected
// before they can become engine session-map keys or queue volume.
func TestParseInboundFieldBounds(t *testing.T) {
	p := fuzzParser(t, false)
	big := strings.Repeat("x", maxFieldLen+1)
	ok := strings.Repeat("x", maxFieldLen)
	if _, _, err := p.parseInbound([]byte(`{"session_id":"` + big + `","action":"a"}`)); err == nil {
		t.Fatal("oversized session_id must fail")
	}
	if _, _, err := p.parseInbound([]byte(`{"session_id":"s","action":"` + big + `"}`)); err == nil {
		t.Fatal("oversized action must fail")
	}
	if _, _, err := p.parseInbound([]byte(`{"session_id":"s","action":"a","user":"` + big + `"}`)); err == nil {
		t.Fatal("oversized user must fail")
	}
	if _, _, err := p.parseInbound([]byte(`{"cmd":"` + big + `"}`)); err == nil {
		t.Fatal("oversized command must fail")
	}
	cmd, evs, err := p.parseInbound([]byte(`{"session_id":"` + ok + `","action":"a","user":"u"}`))
	if err != nil || cmd != "" || len(evs) != 1 || evs[0].Ev.SessionID != ok {
		t.Fatalf("boundary-length session_id rejected: %q %+v %v", cmd, evs, err)
	}
	// A command line with event fields is a command; the event part is
	// ignored rather than double-dispatched.
	cmd, evs, err = p.parseInbound([]byte(`{"cmd":"status","session_id":"s","action":"a"}`))
	if err != nil || cmd != "status" || len(evs) != 0 {
		t.Fatalf("command with event fields: %q %+v %v", cmd, evs, err)
	}
	if _, _, err := p.parseInbound([]byte(`{"user":"u"}`)); err == nil {
		t.Fatal("event without session_id/action must fail")
	}
	// Timestamps pass through untouched.
	_, evs, err = p.parseInbound([]byte(`{"time":"2019-03-01T10:00:00Z","session_id":"s","action":"a"}`))
	if err != nil || len(evs) != 1 || !evs[0].Ev.Time.Equal(time.Date(2019, 3, 1, 10, 0, 0, 0, time.UTC)) {
		t.Fatalf("timestamp mangled: %+v %v", evs, err)
	}
}

// TestParseInboundBatch pins the batch-frame protocol: length cap,
// per-event bounds, interning during parse, precedence over inline
// event fields, rejection of empty frames, and scratch reuse across
// frames of different shapes — on both the fast and slow parse paths.
func TestParseInboundBatch(t *testing.T) {
	for _, noFast := range []bool{false, true} {
		p := fuzzParser(t, noFast)
		label := map[bool]string{false: "fast", true: "slow"}[noFast]
		cmd, evs, err := p.parseInbound([]byte(`{"batch":[{"session_id":"s-1","action":"a","user":"u"},{"session_id":"s-2","action":"zz-new"}]}`))
		if err != nil || cmd != "" || len(evs) != 2 {
			t.Fatalf("%s: well-formed batch: %q %+v %v", label, cmd, evs, err)
		}
		if evs[0].Ev.SessionID != "s-1" || evs[0].Ev.User != "u" || evs[1].Ev.SessionID != "s-2" {
			t.Fatalf("%s: batch events mangled: %+v", label, evs)
		}
		// Interned during parse: "a" is seed index 1, "zz-new" learns
		// the next token; neither retains its action string.
		if evs[0].Tok != 1 || evs[1].Tok != 3 || evs[0].Ev.Action != "" || evs[1].Ev.Action != "" {
			t.Fatalf("%s: parse-time interning wrong: %+v", label, evs)
		}
		// A shorter second frame must not inherit the first frame's
		// fields through the reused decode buffer.
		_, evs, err = p.parseInbound([]byte(`{"batch":[{"session_id":"s-3","action":"a"}]}`))
		if err != nil || len(evs) != 1 || evs[0].Ev.User != "" || !evs[0].Ev.Time.IsZero() {
			t.Fatalf("%s: scratch leak across frames: %+v %v", label, evs, err)
		}
		if _, _, err := p.parseInbound([]byte(`{"batch":[]}`)); err == nil {
			t.Fatalf("%s: empty batch frame must fail", label)
		}
		// An empty time value is a decode error on both paths.
		if _, _, err := p.parseInbound([]byte(`{"batch":[{"session_id":"s","action":"a","time":""}]}`)); err == nil {
			t.Fatalf("%s: empty time value must fail", label)
		}
		if _, _, err := p.parseInbound([]byte(oversizedBatchLine(maxBatchLen + 1))); err == nil {
			t.Fatalf("%s: batch over %d events must fail", label, maxBatchLen)
		}
		if _, evs, err := p.parseInbound([]byte(oversizedBatchLine(maxBatchLen))); err != nil || len(evs) != maxBatchLen {
			t.Fatalf("%s: boundary-length batch rejected: %d %v", label, len(evs), err)
		}
		if _, _, err := p.parseInbound([]byte(`{"batch":[{"session_id":"s","action":"a"},{"session_id":"s"}]}`)); err == nil {
			t.Fatalf("%s: batch with an invalid member must fail whole", label)
		}
		// Precedence: cmd beats batch, batch beats inline event fields.
		cmd, evs, err = p.parseInbound([]byte(`{"cmd":"status","batch":[{"session_id":"s","action":"a"}]}`))
		if err != nil || cmd != "status" || len(evs) != 0 {
			t.Fatalf("%s: cmd+batch line: %q %+v %v", label, cmd, evs, err)
		}
		_, evs, err = p.parseInbound([]byte(`{"batch":[{"session_id":"s","action":"a"}],"session_id":"top","action":"t"}`))
		if err != nil || len(evs) != 1 || evs[0].Ev.SessionID != "s" {
			t.Fatalf("%s: batch+inline-event line: %+v %v", label, evs, err)
		}
	}
}
