package main

import (
	"strings"
	"testing"
	"time"
)

// FuzzServerLine fuzzes the daemon's wire-protocol line parser: whatever
// a client sends, parseInbound must return without panicking and must
// uphold the dispatch invariant the read loop relies on — a nil error
// yields either a control command or a submittable event, never both and
// never neither, with every accepted string field bounded.
func FuzzServerLine(f *testing.F) {
	f.Add([]byte(`{"cmd":"status"}`))
	f.Add([]byte(`{"cmd":"reload"}`))
	f.Add([]byte(`{"time":"2019-03-01T10:00:00Z","user":"alice","session_id":"s-1","action":"ActionSearchUsr"}`))
	f.Add([]byte(`{"session_id":"s","action":"a","cmd":""}`))
	f.Add([]byte(`{"action":""}`))
	f.Add([]byte(`{not json}`))
	f.Add([]byte(``))
	f.Add([]byte(`null`))
	f.Add([]byte(`{"time":"not-a-time","session_id":"s","action":"a"}`))
	f.Add([]byte(`{"cmd":"` + strings.Repeat("x", 2000) + `"}`))
	f.Add([]byte(`{"session_id":"` + strings.Repeat("s", 2000) + `","action":"a"}`))
	f.Add([]byte("{\"session_id\":\"s\",\"action\":\"a\",\"user\":\"\x00\uffff\"}"))
	f.Fuzz(func(t *testing.T, line []byte) {
		cmd, ev, err := parseInbound(line)
		if err != nil {
			if cmd != "" || ev.SessionID != "" || ev.Action != "" {
				t.Fatalf("error path leaked values: cmd=%q ev=%+v", cmd, ev)
			}
			return
		}
		isCmd := cmd != ""
		isEvent := ev.SessionID != "" && ev.Action != ""
		if isCmd == isEvent {
			t.Fatalf("accepted line is neither exactly a command nor exactly an event: cmd=%q ev=%+v line=%q", cmd, ev, line)
		}
		for _, s := range []string{cmd, ev.SessionID, ev.User, ev.Action} {
			if len(s) > maxFieldLen {
				t.Fatalf("accepted field of length %d exceeds bound %d", len(s), maxFieldLen)
			}
		}
	})
}

// TestParseInboundFieldBounds pins the protocol-hardening bounds the
// fuzz target asserts: oversized identifiers are rejected before they
// can become engine session-map keys.
func TestParseInboundFieldBounds(t *testing.T) {
	big := strings.Repeat("x", maxFieldLen+1)
	ok := strings.Repeat("x", maxFieldLen)
	if _, _, err := parseInbound([]byte(`{"session_id":"` + big + `","action":"a"}`)); err == nil {
		t.Fatal("oversized session_id must fail")
	}
	if _, _, err := parseInbound([]byte(`{"session_id":"s","action":"` + big + `"}`)); err == nil {
		t.Fatal("oversized action must fail")
	}
	if _, _, err := parseInbound([]byte(`{"session_id":"s","action":"a","user":"` + big + `"}`)); err == nil {
		t.Fatal("oversized user must fail")
	}
	if _, _, err := parseInbound([]byte(`{"cmd":"` + big + `"}`)); err == nil {
		t.Fatal("oversized command must fail")
	}
	cmd, ev, err := parseInbound([]byte(`{"session_id":"` + ok + `","action":"a","user":"u"}`))
	if err != nil || cmd != "" || ev.SessionID != ok {
		t.Fatalf("boundary-length session_id rejected: %q %+v %v", cmd, ev, err)
	}
	// A command line with event fields is a command; the event part is
	// ignored rather than double-dispatched.
	cmd, ev, err = parseInbound([]byte(`{"cmd":"status","session_id":"s","action":"a"}`))
	if err != nil || cmd != "status" || ev.SessionID != "" {
		t.Fatalf("command with event fields: %q %+v %v", cmd, ev, err)
	}
	if _, _, err := parseInbound([]byte(`{"user":"u"}`)); err == nil {
		t.Fatal("event without session_id/action must fail")
	}
	// Timestamps pass through untouched.
	_, ev, err = parseInbound([]byte(`{"time":"2019-03-01T10:00:00Z","session_id":"s","action":"a"}`))
	if err != nil || !ev.Time.Equal(time.Date(2019, 3, 1, 10, 0, 0, 0, time.UTC)) {
		t.Fatalf("timestamp mangled: %+v %v", ev, err)
	}
}
