package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"misusedetect/internal/actionlog"
	"misusedetect/internal/core"
	"misusedetect/internal/corpus"
	"misusedetect/internal/logsim"
)

// corpusDetector trains one small 13-cluster detector on the embedded
// corpus, shared by the end-to-end concurrency tests.
var (
	e2eOnce sync.Once
	e2eDet  *core.Detector
	e2eErr  error
)

func e2eDetector(t *testing.T) *core.Detector {
	t.Helper()
	e2eOnce.Do(func() {
		c, err := corpus.Load()
		if err != nil {
			e2eErr = err
			return
		}
		vocab, err := actionlog.NewVocabulary(logsim.ActionNames())
		if err != nil {
			e2eErr = err
			return
		}
		cfg := core.ScaledConfig(vocab.Size(), 13, 8, 2, 11)
		cfg.LM.Trainer.LearningRate = 0.01
		cfg.LM.Network.DropoutRate = 0
		e2eDet, e2eErr = core.TrainDetector(cfg, vocab, c.ByCluster(), nil)
	})
	if e2eErr != nil {
		t.Fatalf("train corpus detector: %v", e2eErr)
	}
	return e2eDet
}

// alarmKey identifies one alarm within a session stream: positions are
// strictly increasing, so (session, kind, position) occurs at most once.
func alarmKey(sessionID, kind string, position int) string {
	return fmt.Sprintf("%s|%s|%d", sessionID, kind, position)
}

// TestConcurrentClientsAlarmsExactlyOnce is the end-to-end race test of
// the ISSUE: >= 8 concurrent clients replay disjoint slices of the
// embedded corpus against the TCP server, and every alarm the serial
// reference path predicts arrives on the owning client's connection
// exactly once — no losses, no duplicates, no cross-connection leaks.
func TestConcurrentClientsAlarmsExactlyOnce(t *testing.T) {
	det := e2eDetector(t)
	c, err := corpus.Load()
	if err != nil {
		t.Fatal(err)
	}
	sessions := c.ActionSessions()
	mcfg := core.DefaultMonitorConfig()

	// Serial reference: the expected alarm multiset per session.
	expected := make(map[string]int)
	expectedTotal := 0
	for i := range sessions {
		alarms, err := det.ReplaySerial(mcfg, actionlog.Flatten(sessions[i:i+1]))
		if err != nil {
			t.Fatal(err)
		}
		for _, a := range alarms {
			expected[alarmKey(a.SessionID, a.Kind, a.Position)]++
			expectedTotal++
		}
	}
	if expectedTotal == 0 {
		t.Fatal("serial reference predicts no alarms; the exactly-once check would be vacuous")
	}

	srv, err := NewServer(det, ServerConfig{
		Listen:     "127.0.0.1:0",
		IdleExpiry: time.Minute,
		Shards:     4,
		QueueDepth: 32,
		Monitor:    mcfg,
	})
	if err != nil {
		t.Fatal(err)
	}
	shutdown := startServer(t, srv)
	defer shutdown()

	const clients = 8
	results := make([]map[string]int, clients)
	errs := make(chan error, clients)
	var wg sync.WaitGroup
	for ci := 0; ci < clients; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			got := make(map[string]int)
			results[ci] = got
			conn, err := net.Dial("tcp", srv.Addr())
			if err != nil {
				errs <- fmt.Errorf("client %d: dial: %w", ci, err)
				return
			}
			defer conn.Close()
			conn.SetDeadline(time.Now().Add(2 * time.Minute))

			// Reader first, so alarms never back up the connection.
			readDone := make(chan error, 1)
			go func() {
				sc := bufio.NewScanner(conn)
				sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
				for sc.Scan() {
					var a Alarm
					if err := json.Unmarshal(sc.Bytes(), &a); err != nil {
						readDone <- fmt.Errorf("client %d: bad alarm line %q: %v", ci, sc.Text(), err)
						return
					}
					got[alarmKey(a.SessionID, a.Kind, a.Position)]++
				}
				readDone <- sc.Err()
			}()

			// This client owns every clients-th corpus session.
			enc := json.NewEncoder(conn)
			for i := ci; i < len(sessions); i += clients {
				for _, ev := range actionlog.Flatten(sessions[i : i+1]) {
					if err := enc.Encode(&ev); err != nil {
						errs <- fmt.Errorf("client %d: send: %w", ci, err)
						return
					}
				}
			}
			// Half-close: the server scores everything we sent, flushes
			// our alarms, and closes, ending the reader with EOF.
			if err := conn.(*net.TCPConn).CloseWrite(); err != nil {
				errs <- fmt.Errorf("client %d: close write: %w", ci, err)
				return
			}
			if err := <-readDone; err != nil {
				errs <- err
			}
		}(ci)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Every client received exactly the alarms of its own sessions.
	merged := make(map[string]int)
	mergedTotal := 0
	for ci, got := range results {
		for key, n := range got {
			if n != 1 {
				t.Errorf("client %d received alarm %s %d times, want exactly once", ci, key, n)
			}
			if expected[key] == 0 {
				t.Errorf("client %d received unexpected alarm %s", ci, key)
			}
			merged[key] += n
			mergedTotal += n
		}
	}
	for key, n := range expected {
		if merged[key] != n {
			t.Errorf("alarm %s: received %d times, want %d", key, merged[key], n)
		}
	}
	if mergedTotal != expectedTotal {
		t.Fatalf("received %d alarms in total, serial reference predicts %d", mergedTotal, expectedTotal)
	}
	if st := srv.Stats(); st.ScoreErrors != 0 {
		t.Fatalf("%d score errors on corpus traffic", st.ScoreErrors)
	}
}
