package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"testing"
	"time"

	"misusedetect/internal/actionlog"
	"misusedetect/internal/baseline"
	"misusedetect/internal/core"
	"misusedetect/internal/pipeline"
)

// ngramDetector trains the tiny two-behavior detector on the cheap
// counting backend, so adapt-cycle tests retrain in milliseconds.
func ngramDetector(t *testing.T) (*core.Detector, []*actionlog.Session) {
	t.Helper()
	det, sessions := func() (*core.Detector, []*actionlog.Session) {
		_, sessions := tinyDetector2Corpus(t)
		vocab, err := actionlog.VocabularyFromSessions(sessions)
		if err != nil {
			t.Fatal(err)
		}
		clusters, err := core.GroundTruthClustering(sessions, 2)
		if err != nil {
			t.Fatal(err)
		}
		cfg := core.ScaledConfig(vocab.Size(), 2, 8, 2, 1)
		cfg.Backend = baseline.BackendNGram
		cfg.RouteVoteActions = 5
		det, err := core.TrainDetector(cfg, vocab, clusters, nil)
		if err != nil {
			t.Fatal(err)
		}
		return det, sessions
	}()
	return det, sessions
}

// tinyDetector2Corpus reuses tinyDetector's session corpus without
// paying for its LSTM training.
func tinyDetector2Corpus(t *testing.T) ([]string, []*actionlog.Session) {
	t.Helper()
	names := []string{"a0", "a1", "a2", "a3", "b0", "b1", "b2", "b3"}
	var sessions []*actionlog.Session
	for c := 0; c < 2; c++ {
		for i := 0; i < 25; i++ {
			n := 6 + (i*7+c)%6
			actions := make([]string, n)
			for j := range actions {
				actions[j] = names[c*4+j%4]
			}
			sessions = append(sessions, &actionlog.Session{
				ID: fmt.Sprintf("%s-train-%02d", names[c*4], i), User: "u", Actions: actions, Cluster: c,
			})
		}
	}
	return names, sessions
}

func TestServerDriftAndAdaptCommands(t *testing.T) {
	det, sessions := ngramDetector(t)
	reg, err := core.NewRegistry(det)
	if err != nil {
		t.Fatal(err)
	}
	quiet := core.MonitorConfig{LikelihoodFloor: 0, EWMAAlpha: 0.3, WarmupActions: 2}
	adapter, err := pipeline.New(reg, pipeline.Config{
		Monitor:        quiet,
		MinSessions:    30,
		MinPerCluster:  2,
		GuardrailDelta: 0.5,
		Seed:           5,
		Logf:           t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(nil, ServerConfig{
		Listen:         "127.0.0.1:0",
		IdleExpiry:     time.Minute,
		Shards:         2,
		Monitor:        quiet,
		Registry:       reg,
		Adapter:        adapter,
		OnSessionEnd:   adapter.OnSessionEnd,
		RecordSessions: true,
		Logf:           t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	shutdown := startServer(t, srv)
	defer shutdown()

	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	enc := json.NewEncoder(conn)
	rd := bufio.NewReader(conn)
	roundTrip := func(cmd string) []byte {
		t.Helper()
		if err := enc.Encode(map[string]string{"cmd": cmd}); err != nil {
			t.Fatal(err)
		}
		conn.SetReadDeadline(time.Now().Add(2 * time.Minute))
		line, err := rd.ReadBytes('\n')
		if err != nil {
			t.Fatalf("%s: %v", cmd, err)
		}
		return line
	}

	// Drift state is served before any traffic.
	var dr DriftReply
	if err := json.Unmarshal(roundTrip("drift"), &dr); err != nil {
		t.Fatal(err)
	}
	if dr.Drift.MinSessions != 30 || dr.Drift.Buffered != 0 || dr.Drift.ServingVersion != 1 {
		t.Fatalf("initial drift status = %+v", dr.Drift)
	}

	// A manual cycle without enough buffered sessions is an error line.
	var er ErrorReply
	if err := json.Unmarshal(roundTrip("adapt"), &er); err != nil || er.Error == "" {
		t.Fatalf("adapt on empty buffer: %q, %v", er.Error, err)
	}

	// Stream fresh traffic, end the sessions, and adapt for real.
	for i, s := range sessions {
		c := s.Clone()
		c.ID = fmt.Sprintf("live-%03d", i)
		for _, ev := range actionlog.Flatten([]*actionlog.Session{c}) {
			if err := enc.Encode(&ev); err != nil {
				t.Fatal(err)
			}
		}
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		st := srv.Stats()
		if st.EventsInFlight == 0 && st.EventsSubmitted > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("events never drained: %+v", srv.Stats())
		}
		time.Sleep(10 * time.Millisecond)
	}
	srv.engine.Flush()

	var ar AdaptReply
	if err := json.Unmarshal(roundTrip("adapt"), &ar); err != nil || ar.Adapt == nil {
		t.Fatalf("adapt reply: %v", err)
	}
	if !ar.Adapt.Swapped || ar.Adapt.NewVersion != 2 {
		t.Fatalf("adapt cycle = %+v", ar.Adapt)
	}
	var sr StatusReply
	if err := json.Unmarshal(roundTrip("status"), &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Status.ModelVersion != 2 {
		t.Fatalf("status after adapt: version %d, want 2", sr.Status.ModelVersion)
	}
	if err := json.Unmarshal(roundTrip("drift"), &dr); err != nil {
		t.Fatal(err)
	}
	if dr.Drift.Swaps != 1 || dr.Drift.LastCycle == nil {
		t.Fatalf("drift status after adapt = %+v", dr.Drift)
	}
}

func TestServerAdaptDisabled(t *testing.T) {
	det, _ := ngramDetector(t)
	srv, err := NewServer(det, ServerConfig{
		Listen:     "127.0.0.1:0",
		IdleExpiry: time.Minute,
		Monitor:    core.DefaultMonitorConfig(),
	})
	if err != nil {
		t.Fatal(err)
	}
	shutdown := startServer(t, srv)
	defer shutdown()
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	enc := json.NewEncoder(conn)
	rd := bufio.NewReader(conn)
	for _, cmd := range []string{"drift", "adapt"} {
		if err := enc.Encode(map[string]string{"cmd": cmd}); err != nil {
			t.Fatal(err)
		}
		conn.SetReadDeadline(time.Now().Add(10 * time.Second))
		line, err := rd.ReadBytes('\n')
		if err != nil {
			t.Fatal(err)
		}
		var er ErrorReply
		if err := json.Unmarshal(line, &er); err != nil || er.Error == "" {
			t.Fatalf("%s without adapter must error, got %s", cmd, line)
		}
	}
}
