// Command misused is the online monitoring daemon: it loads a trained
// detector, listens on TCP, accepts newline-delimited JSON events from log
// shippers, reconstructs sessions on the fly, scores every action through
// the per-cluster language models, and writes alarm lines back to the
// client as soon as suspicious behavior is observed — the realtime use
// case of the paper's §IV-C.
//
// Protocol: each line sent by a client is one actionlog.Event in JSON,
// or a batch frame {"batch":[event,...]} carrying up to 512 events (the
// high-throughput path: one parse pass and one queue handoff per shard
// per frame, with a zero-copy fast scan that interns known action names
// straight from the wire bytes); each line written back is an alarm
// notice in JSON. Sessions are expired after an idle timeout to bound
// memory.
//
// Usage:
//
//	misused -model ./model [-listen :7074] [-idle 30m] [-shards 4] [-queue 256] [-monitor thresholds.json]
//	        [-compact-after 5m] [-max-sessions N] [-mem-budget 2g] [-alarm-timeout 50ms]
//
// Memory plane: sessions idle past -compact-after collapse into small
// snapshots (LSTM hidden state + monitor scalars) and rehydrate
// transparently — with byte-identical scores — on their next event;
// -max-sessions and -mem-budget bound the resident set, shedding by
// refusing new sessions first and then evicting the oldest-idle ones
// (see OPERATIONS.md for sizing and the shed counters in status).
//
// Scoring runs on a sharded concurrent engine (see internal/core.Engine
// and ARCHITECTURE.md): session IDs are hashed onto -shards independent
// scoring goroutines fed through bounded queues of depth -queue. The
// model may use any registered scorer backend (LSTM, n-gram, HMM); the
// backend is recorded in the model directory and restored on load.
//
// Control commands (one JSON line each, misusectl wraps them all):
//
//	{"cmd":"status"}  ->  engine counters, active backend + model version
//	{"cmd":"reload"}  ->  verify -model against its manifest checksums,
//	                      then hot-swap the new model set (plus its
//	                      thresholds.json when present); in-flight
//	                      sessions finish on the version they started on
//	                      (zero downtime, no weight mixing). With
//	                      -canary-frac the reload publishes the directory
//	                      as a canary candidate instead of swapping.
//	{"cmd":"drift"}   ->  drift-detector and adaptation-pipeline state
//	                      (requires -adapt)
//	{"cmd":"adapt"}   ->  run one manual retrain cycle now (requires
//	                      -adapt); replies with the cycle report
//	{"cmd":"canary"}  ->  staged-rollout state: pending candidate and
//	                      the comparator's per-arm statistics (requires
//	                      -canary-frac)
//	{"cmd":"canary-promote"}  ->  force-promote the pending candidate
//	{"cmd":"canary-rollback"} ->  force-roll-back (and quarantine) it
//
// Unknown commands receive a {"error":...} JSON line.
//
// Model directories are verified before any weight is decoded — at
// startup and on every reload (internal/rollout): the manifest carries
// per-file SHA-256 checksums, so torn, truncated, or tampered artifacts
// are refused with a descriptive error. Directories saved before
// checksums existed load with a logged warning.
//
// With -adapt the daemon runs the online adaptation pipeline
// (internal/pipeline): per-cluster drift detectors over the live
// session-likelihood stream, a buffer of recent alarm-free sessions as
// candidate retraining data, and — when drift fires — an automatic
// retrain + recalibrate + guardrail-eval + hot-swap cycle. -adapt-root
// receives one versioned model directory per swapped generation.
//
// With -canary-frac the daemon stages every rollout (reloads and
// adaptation cycles alike): the candidate generation serves only that
// fraction of new sessions while a comparator accumulates per-arm alarm
// rates and smoothed likelihoods; after -canary-min-sessions finished
// sessions per arm it promotes the candidate or rolls it back, moving a
// rolled-back candidate's directory into a quarantine directory with
// the verdict recorded inside.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"misusedetect/internal/core"
	"misusedetect/internal/drift"
	"misusedetect/internal/pipeline"
	"misusedetect/internal/rollout"
)

func main() {
	fs := flag.NewFlagSet("misused", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	modelDir := fs.String("model", "./model", "trained model directory")
	listen := fs.String("listen", "127.0.0.1:7074", "TCP listen address")
	idle := fs.Duration("idle", 30*time.Minute, "session idle expiry")
	shards := fs.Int("shards", 0, "scoring engine shard count (0 = default)")
	queue := fs.Int("queue", 0, "per-shard event queue depth (0 = default)")
	monitorPath := fs.String("monitor", "", "calibrated monitor-threshold fragment (JSON, from misusectl eval -thresholds); empty uses defaults")
	compactAfter := fs.Duration("compact-after", 5*time.Minute, "compact sessions idle this long into small snapshots (0 disables compaction)")
	maxSessions := fs.Int("max-sessions", 0, "resident session cap; events for new sessions past it are shed (0 = uncapped)")
	memBudget := fs.String("mem-budget", "", "session memory budget as a byte size (e.g. 512m, 2g); past it new sessions are refused and oldest-idle sessions evicted (empty = unbounded)")
	alarmTimeout := fs.Duration("alarm-timeout", 0, "bound on waiting for a slow alarm consumer before dropping the alarm (0 = lossless blocking send)")
	adapt := fs.Bool("adapt", false, "enable the online drift-detection and retrain/hot-swap pipeline")
	adaptRoot := fs.String("adapt-root", "", "directory receiving one versioned model dir per adapted generation (empty = keep generations in memory only)")
	adaptMinSessions := fs.Int("adapt-min-sessions", 60, "alarm-free sessions buffered before a retrain cycle may run")
	adaptWindow := fs.Int("adapt-window", 40, "drift window: KS reference/sliding window and unknown-rate window, in sessions")
	adaptSensitivity := fs.Float64("adapt-sensitivity", 1, "Page-Hinkley alarm threshold (lambda); lower = more sensitive, earlier retrains")
	adaptGuardrail := fs.Float64("adapt-guardrail", 0.05, "tolerated held-out AUC regression of a retrained generation before the swap is refused")
	adaptFPR := fs.Float64("adapt-fpr", 0.05, "false-positive budget for recalibrating per-cluster alarm floors")
	canaryFrac := fs.Float64("canary-frac", 0, "fraction of new sessions pinned to a published canary candidate (0 disables staged rollouts; reload then swaps directly)")
	canaryMin := fs.Int("canary-min-sessions", 50, "finished sessions each rollout arm needs before the comparator promotes or rolls back")
	if err := fs.Parse(os.Args[1:]); err != nil {
		os.Exit(2)
	}
	var budget int64
	if *memBudget != "" {
		var err error
		if budget, err = core.ParseByteSize(*memBudget); err != nil {
			fmt.Fprintln(os.Stderr, "misused: -mem-budget:", err)
			os.Exit(2)
		}
	}
	cfg := daemonConfig{
		modelDir:     *modelDir,
		listen:       *listen,
		monitorPath:  *monitorPath,
		idle:         *idle,
		compactAfter: *compactAfter,
		maxSessions:  *maxSessions,
		memBudget:    budget,
		alarmTimeout: *alarmTimeout,
		shards:       *shards,
		queue:        *queue,
		adapt:        *adapt,
		adaptRoot:    *adaptRoot,
		minSessions:  *adaptMinSessions,
		window:       *adaptWindow,
		sensitivity:  *adaptSensitivity,
		guardrail:    *adaptGuardrail,
		fpr:          *adaptFPR,
		canaryFrac:   *canaryFrac,
		canaryMin:    *canaryMin,
	}
	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "misused:", err)
		os.Exit(1)
	}
}

// daemonConfig carries the parsed flags.
type daemonConfig struct {
	modelDir, listen, monitorPath string
	idle                          time.Duration
	compactAfter, alarmTimeout    time.Duration
	maxSessions                   int
	memBudget                     int64
	shards, queue                 int
	adapt                         bool
	adaptRoot                     string
	minSessions, window           int
	sensitivity, guardrail, fpr   float64
	canaryFrac                    float64
	canaryMin                     int
}

func run(cfg daemonConfig) error {
	// Integrity gate before any weight is decoded: a torn, truncated, or
	// tampered model directory is refused at startup exactly like at
	// reload. Directories saved before checksums existed load with a
	// warning (migration path).
	rep, err := rollout.Verify(cfg.modelDir)
	if err != nil {
		return fmt.Errorf("verify model: %w", err)
	}
	if rep.Legacy {
		fmt.Printf("warning: model directory %s predates artifact checksums; loading unverified (re-save the model to add them)\n", cfg.modelDir)
	}
	det, err := core.LoadDetector(cfg.modelDir)
	if err != nil {
		return fmt.Errorf("load model: %w", err)
	}
	monitor := core.DefaultMonitorConfig()
	if cfg.monitorPath != "" {
		if monitor, err = core.LoadMonitorConfig(cfg.monitorPath); err != nil {
			return fmt.Errorf("load monitor thresholds: %w", err)
		}
		fmt.Printf("loaded calibrated thresholds from %s (global floor %.5f, %d cluster floors)\n",
			cfg.monitorPath, monitor.LikelihoodFloor, len(monitor.ClusterFloors))
	}
	logf := func(format string, args ...any) { fmt.Printf(format+"\n", args...) }
	reg, err := core.NewRegistry(det)
	if err != nil {
		return err
	}
	scfg := ServerConfig{
		Listen:           cfg.listen,
		ModelDir:         cfg.modelDir,
		IdleExpiry:       cfg.idle,
		CompactAfter:     cfg.compactAfter,
		MaxSessions:      cfg.maxSessions,
		MemBudget:        cfg.memBudget,
		AlarmSendTimeout: cfg.alarmTimeout,
		Shards:           cfg.shards,
		QueueDepth:       cfg.queue,
		Monitor:          monitor,
		Registry:         reg,
		Logf:             logf,
	}
	var canary *rollout.Controller
	if cfg.canaryFrac > 0 {
		canary, err = rollout.NewController(reg, rollout.Config{
			Fraction:    cfg.canaryFrac,
			MinSessions: cfg.canaryMin,
			Logf:        logf,
		})
		if err != nil {
			return fmt.Errorf("start canary controller: %w", err)
		}
		scfg.Canary = canary
		scfg.OnSessionEnd = canary.OnSessionEnd
	}
	if cfg.adapt {
		dcfg := drift.DefaultConfig()
		dcfg.PageHinkley.Lambda = cfg.sensitivity
		dcfg.KS.Window = cfg.window
		dcfg.Unknown.Window = cfg.window
		adapter, err := pipeline.New(reg, pipeline.Config{
			Drift:          dcfg,
			Monitor:        monitor,
			MinSessions:    cfg.minSessions,
			GuardrailDelta: cfg.guardrail,
			FPRBudget:      cfg.fpr,
			ModelRoot:      cfg.adaptRoot,
			AutoCycle:      true,
			Canary:         canary,
			Logf:           logf,
		})
		if err != nil {
			return fmt.Errorf("start adaptation pipeline: %w", err)
		}
		scfg.Adapter = adapter
		scfg.RecordSessions = true
		if canary != nil {
			// Both consumers feed off every finished session: the rollout
			// comparator first (cheap counters), then the drift/retrain
			// pipeline.
			scfg.OnSessionEnd = func(sum core.SessionSummary) {
				canary.OnSessionEnd(sum)
				adapter.OnSessionEnd(sum)
			}
		} else {
			scfg.OnSessionEnd = adapter.OnSessionEnd
		}
	}
	srv, err := NewServer(det, scfg)
	if err != nil {
		return err
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	fmt.Printf("misused listening on %s (model %s, backend %s, %d clusters, %d shards, adapt %v)\n",
		srv.Addr(), cfg.modelDir, det.Backend(), det.ClusterCount(), srv.Stats().Shards, cfg.adapt)
	return srv.Serve(ctx)
}
