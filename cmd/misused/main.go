// Command misused is the online monitoring daemon: it loads a trained
// detector, listens on TCP, accepts newline-delimited JSON events from log
// shippers, reconstructs sessions on the fly, scores every action through
// the per-cluster language models, and writes alarm lines back to the
// client as soon as suspicious behavior is observed — the realtime use
// case of the paper's §IV-C.
//
// Protocol: each line sent by a client is one actionlog.Event in JSON;
// each line written back is an alarm notice in JSON. Sessions are expired
// after an idle timeout to bound memory.
//
// Usage:
//
//	misused -model ./model [-listen :7074] [-idle 30m] [-shards 4] [-queue 256] [-monitor thresholds.json]
//
// Scoring runs on a sharded concurrent engine (see internal/core.Engine
// and ARCHITECTURE.md): session IDs are hashed onto -shards independent
// scoring goroutines fed through bounded queues of depth -queue. The
// model may use any registered scorer backend (LSTM, n-gram, HMM); the
// backend is recorded in the model directory and restored on load.
//
// Control commands (one JSON line each, misusectl wraps both):
//
//	{"cmd":"status"}  ->  engine counters, active backend + model version
//	{"cmd":"reload"}  ->  re-read -model and hot-swap the new model set;
//	                      in-flight sessions finish on the version they
//	                      started on (zero downtime, no weight mixing)
//
// Unknown commands receive a {"error":...} JSON line.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"misusedetect/internal/core"
)

func main() {
	fs := flag.NewFlagSet("misused", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	modelDir := fs.String("model", "./model", "trained model directory")
	listen := fs.String("listen", "127.0.0.1:7074", "TCP listen address")
	idle := fs.Duration("idle", 30*time.Minute, "session idle expiry")
	shards := fs.Int("shards", 0, "scoring engine shard count (0 = default)")
	queue := fs.Int("queue", 0, "per-shard event queue depth (0 = default)")
	monitorPath := fs.String("monitor", "", "calibrated monitor-threshold fragment (JSON, from misusectl eval -thresholds); empty uses defaults")
	if err := fs.Parse(os.Args[1:]); err != nil {
		os.Exit(2)
	}
	if err := run(*modelDir, *listen, *monitorPath, *idle, *shards, *queue); err != nil {
		fmt.Fprintln(os.Stderr, "misused:", err)
		os.Exit(1)
	}
}

func run(modelDir, listen, monitorPath string, idle time.Duration, shards, queue int) error {
	det, err := core.LoadDetector(modelDir)
	if err != nil {
		return fmt.Errorf("load model: %w", err)
	}
	monitor := core.DefaultMonitorConfig()
	if monitorPath != "" {
		if monitor, err = core.LoadMonitorConfig(monitorPath); err != nil {
			return fmt.Errorf("load monitor thresholds: %w", err)
		}
		fmt.Printf("loaded calibrated thresholds from %s (global floor %.5f, %d cluster floors)\n",
			monitorPath, monitor.LikelihoodFloor, len(monitor.ClusterFloors))
	}
	srv, err := NewServer(det, ServerConfig{
		Listen:     listen,
		ModelDir:   modelDir,
		IdleExpiry: idle,
		Shards:     shards,
		QueueDepth: queue,
		Monitor:    monitor,
		Logf:       func(format string, args ...any) { fmt.Printf(format+"\n", args...) },
	})
	if err != nil {
		return err
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	fmt.Printf("misused listening on %s (model %s, backend %s, %d clusters, %d shards)\n",
		srv.Addr(), modelDir, det.Backend(), det.ClusterCount(), srv.Stats().Shards)
	return srv.Serve(ctx)
}
