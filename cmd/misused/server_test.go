package main

import (
	"bufio"
	"context"
	"encoding/json"
	"math/rand"
	"net"
	"path/filepath"
	"testing"
	"time"

	"misusedetect/internal/actionlog"
	"misusedetect/internal/baseline"
	"misusedetect/internal/core"
	"misusedetect/internal/corpus"
	"misusedetect/internal/logsim"
)

// tinyDetector trains a minimal two-behavior detector for server tests.
func tinyDetector(t *testing.T) (*core.Detector, []*actionlog.Session) {
	t.Helper()
	names := []string{"a0", "a1", "a2", "a3", "b0", "b1", "b2", "b3"}
	vocab, err := actionlog.NewVocabulary(names)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	var sessions []*actionlog.Session
	for c := 0; c < 2; c++ {
		for i := 0; i < 25; i++ {
			n := 6 + rng.Intn(6)
			actions := make([]string, n)
			for j := range actions {
				actions[j] = names[c*4+j%4]
			}
			sessions = append(sessions, &actionlog.Session{
				ID: names[c*4] + "-sess", User: "u", Actions: actions, Cluster: c,
			})
		}
	}
	clusters, err := core.GroundTruthClustering(sessions, 2)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.ScaledConfig(vocab.Size(), 2, 12, 20, 1)
	cfg.LM.Trainer.LearningRate = 0.01
	cfg.LM.Network.DropoutRate = 0
	cfg.RouteVoteActions = 5
	det, err := core.TrainDetector(cfg, vocab, clusters, nil)
	if err != nil {
		t.Fatal(err)
	}
	return det, sessions
}

// startServer runs srv.Serve in the background and returns a shutdown
// func that asserts a clean exit.
func startServer(t *testing.T, srv *Server) func() {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ctx) }()
	return func() {
		cancel()
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("Serve returned %v", err)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("server did not shut down")
		}
	}
}

func TestServerConfigValidation(t *testing.T) {
	det, _ := tinyDetector(t)
	if _, err := NewServer(det, ServerConfig{Listen: "127.0.0.1:0", IdleExpiry: 0}); err == nil {
		t.Fatal("zero IdleExpiry must fail")
	}
	if _, err := NewServer(det, ServerConfig{Listen: "256.0.0.1:bad", IdleExpiry: time.Minute}); err == nil {
		t.Fatal("bad listen address must fail")
	}
	if _, err := NewServer(det, ServerConfig{Listen: "127.0.0.1:0", IdleExpiry: time.Minute, Shards: -3}); err == nil {
		t.Fatal("negative shard count must fail")
	}
}

func TestServerDetectsAnomalousStream(t *testing.T) {
	det, sessions := tinyDetector(t)
	srv, err := NewServer(det, ServerConfig{
		Listen:     "127.0.0.1:0",
		IdleExpiry: time.Minute,
		Shards:     3,
		Monitor:    core.DefaultMonitorConfig(),
	})
	if err != nil {
		t.Fatal(err)
	}
	shutdown := startServer(t, srv)
	defer shutdown()

	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	enc := json.NewEncoder(conn)

	// A normal session first.
	base := time.Date(2019, 3, 1, 10, 0, 0, 0, time.UTC)
	for i, a := range sessions[0].Actions {
		ev := actionlog.Event{Time: base.Add(time.Duration(i) * time.Second), User: "alice", SessionID: "normal-1", Action: a}
		if err := enc.Encode(&ev); err != nil {
			t.Fatal(err)
		}
	}
	// Then an anomalous session: normal prefix, then noise.
	rng := rand.New(rand.NewSource(9))
	vocabNames := det.Vocabulary().Actions()
	var anomalous []string
	anomalous = append(anomalous, sessions[0].Actions...)
	for i := 0; i < 40; i++ {
		anomalous = append(anomalous, vocabNames[rng.Intn(len(vocabNames))])
	}
	for i, a := range anomalous {
		ev := actionlog.Event{Time: base.Add(time.Duration(100+i) * time.Second), User: "mallory", SessionID: "bad-1", Action: a}
		if err := enc.Encode(&ev); err != nil {
			t.Fatal(err)
		}
	}

	// Read alarms until one arrives for bad-1 (bounded wait).
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	sc := bufio.NewScanner(conn)
	foundBad := false
	for sc.Scan() {
		var a Alarm
		if err := json.Unmarshal(sc.Bytes(), &a); err != nil {
			t.Fatalf("bad alarm line %q: %v", sc.Text(), err)
		}
		if a.SessionID == "normal-1" {
			t.Fatalf("false alarm on normal session: %+v", a)
		}
		if a.SessionID == "bad-1" {
			foundBad = true
			break
		}
	}
	if !foundBad {
		t.Fatal("no alarm received for the anomalous session")
	}
	// Both sessions live in the engine once their events are scored; the
	// normal session's shard may still be draining, so poll.
	deadline := time.Now().Add(5 * time.Second)
	for srv.SessionCount() != 2 {
		if time.Now().After(deadline) {
			t.Fatalf("server tracks %d sessions, want 2", srv.SessionCount())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestServerIgnoresMalformedEvents(t *testing.T) {
	det, _ := tinyDetector(t)
	srv, err := NewServer(det, ServerConfig{
		Listen:     "127.0.0.1:0",
		IdleExpiry: time.Minute,
		Monitor:    core.DefaultMonitorConfig(),
	})
	if err != nil {
		t.Fatal(err)
	}
	shutdown := startServer(t, srv)
	defer shutdown()

	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("{not json}\n{\"action\":\"\"}\n")); err != nil {
		t.Fatal(err)
	}
	// A valid event after garbage must still be processed.
	ev := actionlog.Event{Time: time.Now(), User: "u", SessionID: "s", Action: "a0"}
	data, _ := json.Marshal(&ev)
	if _, err := conn.Write(append(data, '\n')); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for srv.SessionCount() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("valid event after garbage was not processed")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestServerExpiresIdleSessions(t *testing.T) {
	det, _ := tinyDetector(t)
	srv, err := NewServer(det, ServerConfig{
		Listen:     "127.0.0.1:0",
		IdleExpiry: 20 * time.Millisecond,
		Monitor:    core.DefaultMonitorConfig(),
	})
	if err != nil {
		t.Fatal(err)
	}
	shutdown := startServer(t, srv)
	defer shutdown()

	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	ev := actionlog.Event{Time: time.Now(), User: "u", SessionID: "idle-1", Action: "a0"}
	data, _ := json.Marshal(&ev)
	if _, err := conn.Write(append(data, '\n')); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for srv.SessionCount() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("session never tracked")
		}
		time.Sleep(5 * time.Millisecond)
	}
	for {
		st := srv.Stats()
		if st.SessionsLive == 0 && st.Evictions >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("idle session not evicted: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestServerNGramBackendEndToEnd covers the full classical-backend
// serving flow on the embedded corpus: train an ngram detector (selected
// purely by config), save it through the tagged envelope, load it back,
// serve it, and stream an anomalous corpus session until alarms come
// back — no LSTM code anywhere in the path.
func TestServerNGramBackendEndToEnd(t *testing.T) {
	c, err := corpus.Load()
	if err != nil {
		t.Fatal(err)
	}
	vocab, err := actionlog.NewVocabulary(logsim.ActionNames())
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.ScaledConfig(vocab.Size(), 13, 8, 2, 11)
	cfg.Backend = baseline.BackendNGram
	det, err := core.TrainDetector(cfg, vocab, c.ByCluster(), nil)
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "model")
	if err := det.Save(dir); err != nil {
		t.Fatal(err)
	}
	loaded, err := core.LoadDetector(dir)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Backend() != baseline.BackendNGram {
		t.Fatalf("loaded backend %q", loaded.Backend())
	}

	srv, err := NewServer(loaded, ServerConfig{
		Listen:     "127.0.0.1:0",
		ModelDir:   dir,
		IdleExpiry: time.Minute,
		Shards:     3,
		Monitor:    core.DefaultMonitorConfig(),
	})
	if err != nil {
		t.Fatal(err)
	}
	shutdown := startServer(t, srv)
	defer shutdown()

	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	enc := json.NewEncoder(conn)
	base := time.Date(2019, 3, 1, 10, 0, 0, 0, time.UTC)
	anomalies := c.Anomalies()
	if len(anomalies) == 0 {
		t.Fatal("corpus has no anomalous sessions")
	}
	for _, s := range anomalies {
		for i, a := range s.Actions {
			ev := actionlog.Event{Time: base.Add(time.Duration(i) * time.Second), User: s.User, SessionID: s.ID, Action: a}
			if err := enc.Encode(&ev); err != nil {
				t.Fatal(err)
			}
		}
	}
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	sc := bufio.NewScanner(conn)
	if !sc.Scan() {
		t.Fatalf("no alarm line from the ngram-backend server: %v", sc.Err())
	}
	var a Alarm
	if err := json.Unmarshal(sc.Bytes(), &a); err != nil {
		t.Fatalf("bad alarm line %q: %v", sc.Text(), err)
	}
	if a.ModelVersion != 1 {
		t.Fatalf("alarm model version = %d, want 1", a.ModelVersion)
	}
	if st := srv.Stats(); st.Backend != baseline.BackendNGram {
		t.Fatalf("server reports backend %q", st.Backend)
	}
}

// TestServerReloadCommand covers the zero-downtime reload wire command:
// the daemon re-reads its model directory, bumps the registry version,
// and reports the new generation in status.
func TestServerReloadCommand(t *testing.T) {
	det, _ := tinyDetector(t)
	dir := filepath.Join(t.TempDir(), "model")
	if err := det.Save(dir); err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(det, ServerConfig{
		Listen:     "127.0.0.1:0",
		ModelDir:   dir,
		IdleExpiry: time.Minute,
		Monitor:    core.DefaultMonitorConfig(),
	})
	if err != nil {
		t.Fatal(err)
	}
	shutdown := startServer(t, srv)
	defer shutdown()

	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(10 * time.Second))
	if _, err := conn.Write([]byte("{\"cmd\":\"reload\"}\n{\"cmd\":\"status\"}\n")); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(conn)
	if !sc.Scan() {
		t.Fatalf("no reload reply: %v", sc.Err())
	}
	var rr ReloadReply
	if err := json.Unmarshal(sc.Bytes(), &rr); err != nil || rr.Reload.Version != 2 {
		t.Fatalf("reload reply %q (err %v), want version 2", sc.Text(), err)
	}
	if rr.Reload.Backend != det.Backend() || rr.Reload.Clusters != det.ClusterCount() {
		t.Fatalf("reload reply %+v does not describe the model", rr.Reload)
	}
	if !sc.Scan() {
		t.Fatalf("no status reply: %v", sc.Err())
	}
	var st StatusReply
	if err := json.Unmarshal(sc.Bytes(), &st); err != nil {
		t.Fatalf("status reply %q: %v", sc.Text(), err)
	}
	if st.Status.ModelVersion != 2 || st.Status.Reloads != 1 {
		t.Fatalf("status after reload: version %d reloads %d, want 2/1", st.Status.ModelVersion, st.Status.Reloads)
	}
}

// TestServerCommandErrors: unknown control commands and impossible
// reloads must produce JSON error lines, not silence.
func TestServerCommandErrors(t *testing.T) {
	det, _ := tinyDetector(t)
	srv, err := NewServer(det, ServerConfig{
		Listen:     "127.0.0.1:0",
		IdleExpiry: time.Minute,
		Monitor:    core.DefaultMonitorConfig(),
	})
	if err != nil {
		t.Fatal(err)
	}
	shutdown := startServer(t, srv)
	defer shutdown()

	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(10 * time.Second))
	if _, err := conn.Write([]byte("{\"cmd\":\"frobnicate\"}\n{\"cmd\":\"reload\"}\n")); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(conn)
	if !sc.Scan() {
		t.Fatalf("no error reply for unknown command: %v", sc.Err())
	}
	var er ErrorReply
	if err := json.Unmarshal(sc.Bytes(), &er); err != nil || er.Error != `unknown command "frobnicate"` {
		t.Fatalf("unknown-command reply %q (err %v)", sc.Text(), err)
	}
	if !sc.Scan() {
		t.Fatalf("no error reply for disabled reload: %v", sc.Err())
	}
	er = ErrorReply{}
	if err := json.Unmarshal(sc.Bytes(), &er); err != nil || er.Error == "" {
		t.Fatalf("disabled-reload reply %q (err %v), want an error line", sc.Text(), err)
	}
}

func TestServerStatusCommand(t *testing.T) {
	det, _ := tinyDetector(t)
	srv, err := NewServer(det, ServerConfig{
		Listen:     "127.0.0.1:0",
		IdleExpiry: time.Minute,
		Shards:     2,
		Monitor:    core.DefaultMonitorConfig(),
	})
	if err != nil {
		t.Fatal(err)
	}
	shutdown := startServer(t, srv)
	defer shutdown()

	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	ev := actionlog.Event{Time: time.Now(), User: "u", SessionID: "s1", Action: "a0"}
	data, _ := json.Marshal(&ev)
	if _, err := conn.Write(append(data, '\n')); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write([]byte("{\"cmd\":\"status\"}\n")); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	sc := bufio.NewScanner(conn)
	for sc.Scan() {
		var reply StatusReply
		if err := json.Unmarshal(sc.Bytes(), &reply); err != nil || reply.Status.Shards == 0 {
			continue // an alarm line, not the status reply
		}
		if reply.Status.Shards != 2 {
			t.Fatalf("status shards = %d, want 2", reply.Status.Shards)
		}
		if reply.Status.EventsSubmitted < 1 {
			t.Fatalf("status events_submitted = %d, want >= 1", reply.Status.EventsSubmitted)
		}
		if reply.Uptime == "" {
			t.Fatal("status reply has no uptime")
		}
		return
	}
	t.Fatalf("no status reply received: %v", sc.Err())
}
