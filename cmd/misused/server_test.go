package main

import (
	"bufio"
	"context"
	"encoding/json"
	"math/rand"
	"net"
	"testing"
	"time"

	"misusedetect/internal/actionlog"
	"misusedetect/internal/core"
)

// tinyDetector trains a minimal two-behavior detector for server tests.
func tinyDetector(t *testing.T) (*core.Detector, []*actionlog.Session) {
	t.Helper()
	names := []string{"a0", "a1", "a2", "a3", "b0", "b1", "b2", "b3"}
	vocab, err := actionlog.NewVocabulary(names)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	var sessions []*actionlog.Session
	for c := 0; c < 2; c++ {
		for i := 0; i < 25; i++ {
			n := 6 + rng.Intn(6)
			actions := make([]string, n)
			for j := range actions {
				actions[j] = names[c*4+j%4]
			}
			sessions = append(sessions, &actionlog.Session{
				ID: names[c*4] + "-sess", User: "u", Actions: actions, Cluster: c,
			})
		}
	}
	clusters, err := core.GroundTruthClustering(sessions, 2)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.ScaledConfig(vocab.Size(), 2, 12, 20, 1)
	cfg.LM.Trainer.LearningRate = 0.01
	cfg.LM.Network.DropoutRate = 0
	cfg.RouteVoteActions = 5
	det, err := core.TrainDetector(cfg, vocab, clusters, nil)
	if err != nil {
		t.Fatal(err)
	}
	return det, sessions
}

// startServer runs srv.Serve in the background and returns a shutdown
// func that asserts a clean exit.
func startServer(t *testing.T, srv *Server) func() {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ctx) }()
	return func() {
		cancel()
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("Serve returned %v", err)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("server did not shut down")
		}
	}
}

func TestServerConfigValidation(t *testing.T) {
	det, _ := tinyDetector(t)
	if _, err := NewServer(det, ServerConfig{Listen: "127.0.0.1:0", IdleExpiry: 0}); err == nil {
		t.Fatal("zero IdleExpiry must fail")
	}
	if _, err := NewServer(det, ServerConfig{Listen: "256.0.0.1:bad", IdleExpiry: time.Minute}); err == nil {
		t.Fatal("bad listen address must fail")
	}
	if _, err := NewServer(det, ServerConfig{Listen: "127.0.0.1:0", IdleExpiry: time.Minute, Shards: -3}); err == nil {
		t.Fatal("negative shard count must fail")
	}
}

func TestServerDetectsAnomalousStream(t *testing.T) {
	det, sessions := tinyDetector(t)
	srv, err := NewServer(det, ServerConfig{
		Listen:     "127.0.0.1:0",
		IdleExpiry: time.Minute,
		Shards:     3,
		Monitor:    core.DefaultMonitorConfig(),
	})
	if err != nil {
		t.Fatal(err)
	}
	shutdown := startServer(t, srv)
	defer shutdown()

	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	enc := json.NewEncoder(conn)

	// A normal session first.
	base := time.Date(2019, 3, 1, 10, 0, 0, 0, time.UTC)
	for i, a := range sessions[0].Actions {
		ev := actionlog.Event{Time: base.Add(time.Duration(i) * time.Second), User: "alice", SessionID: "normal-1", Action: a}
		if err := enc.Encode(&ev); err != nil {
			t.Fatal(err)
		}
	}
	// Then an anomalous session: normal prefix, then noise.
	rng := rand.New(rand.NewSource(9))
	vocabNames := det.Vocabulary().Actions()
	var anomalous []string
	anomalous = append(anomalous, sessions[0].Actions...)
	for i := 0; i < 40; i++ {
		anomalous = append(anomalous, vocabNames[rng.Intn(len(vocabNames))])
	}
	for i, a := range anomalous {
		ev := actionlog.Event{Time: base.Add(time.Duration(100+i) * time.Second), User: "mallory", SessionID: "bad-1", Action: a}
		if err := enc.Encode(&ev); err != nil {
			t.Fatal(err)
		}
	}

	// Read alarms until one arrives for bad-1 (bounded wait).
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	sc := bufio.NewScanner(conn)
	foundBad := false
	for sc.Scan() {
		var a Alarm
		if err := json.Unmarshal(sc.Bytes(), &a); err != nil {
			t.Fatalf("bad alarm line %q: %v", sc.Text(), err)
		}
		if a.SessionID == "normal-1" {
			t.Fatalf("false alarm on normal session: %+v", a)
		}
		if a.SessionID == "bad-1" {
			foundBad = true
			break
		}
	}
	if !foundBad {
		t.Fatal("no alarm received for the anomalous session")
	}
	// Both sessions live in the engine once their events are scored; the
	// normal session's shard may still be draining, so poll.
	deadline := time.Now().Add(5 * time.Second)
	for srv.SessionCount() != 2 {
		if time.Now().After(deadline) {
			t.Fatalf("server tracks %d sessions, want 2", srv.SessionCount())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestServerIgnoresMalformedEvents(t *testing.T) {
	det, _ := tinyDetector(t)
	srv, err := NewServer(det, ServerConfig{
		Listen:     "127.0.0.1:0",
		IdleExpiry: time.Minute,
		Monitor:    core.DefaultMonitorConfig(),
	})
	if err != nil {
		t.Fatal(err)
	}
	shutdown := startServer(t, srv)
	defer shutdown()

	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("{not json}\n{\"action\":\"\"}\n")); err != nil {
		t.Fatal(err)
	}
	// A valid event after garbage must still be processed.
	ev := actionlog.Event{Time: time.Now(), User: "u", SessionID: "s", Action: "a0"}
	data, _ := json.Marshal(&ev)
	if _, err := conn.Write(append(data, '\n')); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for srv.SessionCount() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("valid event after garbage was not processed")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestServerExpiresIdleSessions(t *testing.T) {
	det, _ := tinyDetector(t)
	srv, err := NewServer(det, ServerConfig{
		Listen:     "127.0.0.1:0",
		IdleExpiry: 20 * time.Millisecond,
		Monitor:    core.DefaultMonitorConfig(),
	})
	if err != nil {
		t.Fatal(err)
	}
	shutdown := startServer(t, srv)
	defer shutdown()

	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	ev := actionlog.Event{Time: time.Now(), User: "u", SessionID: "idle-1", Action: "a0"}
	data, _ := json.Marshal(&ev)
	if _, err := conn.Write(append(data, '\n')); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for srv.SessionCount() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("session never tracked")
		}
		time.Sleep(5 * time.Millisecond)
	}
	for {
		st := srv.Stats()
		if st.SessionsLive == 0 && st.Evictions >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("idle session not evicted: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestServerStatusCommand(t *testing.T) {
	det, _ := tinyDetector(t)
	srv, err := NewServer(det, ServerConfig{
		Listen:     "127.0.0.1:0",
		IdleExpiry: time.Minute,
		Shards:     2,
		Monitor:    core.DefaultMonitorConfig(),
	})
	if err != nil {
		t.Fatal(err)
	}
	shutdown := startServer(t, srv)
	defer shutdown()

	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	ev := actionlog.Event{Time: time.Now(), User: "u", SessionID: "s1", Action: "a0"}
	data, _ := json.Marshal(&ev)
	if _, err := conn.Write(append(data, '\n')); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write([]byte("{\"cmd\":\"status\"}\n")); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	sc := bufio.NewScanner(conn)
	for sc.Scan() {
		var reply StatusReply
		if err := json.Unmarshal(sc.Bytes(), &reply); err != nil || reply.Status.Shards == 0 {
			continue // an alarm line, not the status reply
		}
		if reply.Status.Shards != 2 {
			t.Fatalf("status shards = %d, want 2", reply.Status.Shards)
		}
		if reply.Status.EventsSubmitted < 1 {
			t.Fatalf("status events_submitted = %d, want >= 1", reply.Status.EventsSubmitted)
		}
		if reply.Uptime == "" {
			t.Fatal("status reply has no uptime")
		}
		return
	}
	t.Fatalf("no status reply received: %v", sc.Err())
}
