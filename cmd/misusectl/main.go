// Command misusectl is the command-line interface of the misuse-detection
// library: it generates simulated portal logs, trains the full pipeline
// (informed clustering + per-cluster OC-SVM and LSTM models), scores
// session logs, replays sessions through the online monitor, and
// regenerates every figure of the paper's evaluation.
//
// Usage:
//
//	misusectl generate   -out events.jsonl [-divisor 10] [-seed 1]
//	misusectl train      -data events.jsonl -model ./model [-clusters 13] [-scale default] [-backend lstm|ngram|hmm]
//	misusectl score      -data events.jsonl -model ./model [-top 20]
//	misusectl monitor    -data events.jsonl -model ./model
//	misusectl experiment -id fig5 [-scale test] [-seed 42]  (or -id all)
//	misusectl inspect    -model ./model
//	misusectl eval       [-source corpus|sim] [-backends lstm,ngram,hmm | -model ./model] [-fpr 0.05] [-min-auc 0.6] [-thresholds out.json] [-json] [-addr host:port]
//	misusectl bench      [-backends lstm,ngram,hmm] [-shards 1,4] [-events 20000] [-json] [-addr host:port]
//	misusectl status     -addr 127.0.0.1:7074
//	misusectl reload     -addr 127.0.0.1:7074
//	misusectl drift      -addr 127.0.0.1:7074
//	misusectl adapt      -once [-addr host:port | -model ./model -data events.jsonl [-root ./generations]]
//	misusectl canary     -addr 127.0.0.1:7074 [-promote | -rollback]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
)

// subcommands is the single registry of misusectl verbs: run dispatches
// on it and the docs-consistency test cross-checks every subcommand
// README.md and OPERATIONS.md mention against it.
var subcommands = map[string]func([]string) error{
	"generate":   cmdGenerate,
	"train":      cmdTrain,
	"score":      cmdScore,
	"monitor":    cmdMonitor,
	"viz":        cmdViz,
	"experiment": cmdExperiment,
	"inspect":    cmdInspect,
	"eval":       cmdEval,
	"bench":      cmdBench,
	"status":     cmdStatus,
	"reload":     cmdReload,
	"drift":      cmdDrift,
	"adapt":      cmdAdapt,
	"canary":     cmdCanary,
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "misusectl:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		usage()
		return fmt.Errorf("missing subcommand")
	}
	switch args[0] {
	case "help", "-h", "--help":
		usage()
		return nil
	}
	cmd, ok := subcommands[args[0]]
	if !ok {
		usage()
		return fmt.Errorf("unknown subcommand %q", args[0])
	}
	return cmd(args[1:])
}

// subcommandNames returns the registered verbs, sorted.
func subcommandNames() []string {
	out := make([]string, 0, len(subcommands))
	for name := range subcommands {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

func usage() {
	fmt.Fprintln(os.Stderr, `misusectl - system misuse detection via informed behavior clustering and modeling

subcommands:
  generate    generate a simulated portal event log (JSONL)
  train       train the detection pipeline on an event log
  score       score the sessions of an event log against a trained model
  monitor     replay an event log through the online monitor
  viz         build the visual interface artifacts (t-SNE projection, topic-action matrix, chord diagram)
  experiment  regenerate a paper figure (fig3 fig4 fig5 fig6 fig7 fig8-9 fig10 fig11-12 top20 ablation-* extension-*) or 'all'
  inspect     describe a saved model directory
  eval        replay labeled traffic end to end and report detection quality (AUC, TPR@FPR, time-to-detection) per backend, with threshold calibration; -addr measures a live daemon at the wire level
  bench       measure serving latency percentiles and events/sec across backends and shard counts; -addr load-tests a live daemon over TCP
  status      query a running misused daemon for its engine counters (backend, model version, ...)
  reload      hot-swap a running misused daemon onto its re-trained model directory
  drift       inspect a daemon's drift detectors and adaptation pipeline (requires misused -adapt)
  adapt       run one retrain/recalibrate/hot-swap cycle: -addr inside a live daemon, or offline against -model and -data
  canary      inspect a daemon's staged rollout, or force-decide it with -promote / -rollback (requires misused -canary-frac)`)
}

func newFlagSet(name string) *flag.FlagSet {
	fs := flag.NewFlagSet(name, flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	return fs
}
