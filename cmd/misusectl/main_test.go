package main

import (
	"os"
	"path/filepath"
	"testing"
)

// TestCLIEndToEnd exercises the full tool flow: generate a small corpus,
// train a test-scale model, inspect it, score the corpus, and replay it
// through the monitor.
func TestCLIEndToEnd(t *testing.T) {
	dir := t.TempDir()
	events := filepath.Join(dir, "events.jsonl")
	model := filepath.Join(dir, "model")

	if err := run([]string{"generate", "-out", events, "-divisor", "60", "-seed", "3", "-misuse", "2"}); err != nil {
		t.Fatalf("generate: %v", err)
	}
	if _, err := os.Stat(events); err != nil {
		t.Fatalf("event log missing: %v", err)
	}
	if err := run([]string{"train", "-data", events, "-model", model, "-clusters", "4", "-scale", "test", "-seed", "2"}); err != nil {
		t.Fatalf("train: %v", err)
	}
	if _, err := os.Stat(filepath.Join(model, "manifest.json")); err != nil {
		t.Fatalf("model manifest missing: %v", err)
	}
	if err := run([]string{"inspect", "-model", model}); err != nil {
		t.Fatalf("inspect: %v", err)
	}
	if err := run([]string{"score", "-data", events, "-model", model, "-top", "5"}); err != nil {
		t.Fatalf("score: %v", err)
	}
	if err := run([]string{"score", "-data", events, "-model", model, "-top", "3", "-json"}); err != nil {
		t.Fatalf("score json: %v", err)
	}
	if err := run([]string{"monitor", "-data", events, "-model", model}); err != nil {
		t.Fatalf("monitor: %v", err)
	}

	// The same flow with a classical backend selected by flag.
	ngModel := filepath.Join(dir, "model-ngram")
	if err := run([]string{"train", "-data", events, "-model", ngModel, "-clusters", "4", "-scale", "test", "-seed", "2", "-backend", "ngram"}); err != nil {
		t.Fatalf("train ngram: %v", err)
	}
	if err := run([]string{"inspect", "-model", ngModel}); err != nil {
		t.Fatalf("inspect ngram: %v", err)
	}
	if err := run([]string{"score", "-data", events, "-model", ngModel, "-top", "5"}); err != nil {
		t.Fatalf("score ngram: %v", err)
	}
	if err := run([]string{"monitor", "-data", events, "-model", ngModel}); err != nil {
		t.Fatalf("monitor ngram: %v", err)
	}
}

func TestCLIErrors(t *testing.T) {
	if err := run(nil); err == nil {
		t.Fatal("missing subcommand must fail")
	}
	if err := run([]string{"frobnicate"}); err == nil {
		t.Fatal("unknown subcommand must fail")
	}
	if err := run([]string{"train"}); err == nil {
		t.Fatal("train without -data must fail")
	}
	if err := run([]string{"score"}); err == nil {
		t.Fatal("score without -data must fail")
	}
	if err := run([]string{"monitor"}); err == nil {
		t.Fatal("monitor without -data must fail")
	}
	if err := run([]string{"experiment", "-scale", "bogus"}); err == nil {
		t.Fatal("bad scale must fail")
	}
	if err := run([]string{"reload", "-addr", "127.0.0.1:1", "-timeout", "100ms"}); err == nil {
		t.Fatal("reload against a dead daemon must fail")
	}
	if err := run([]string{"help"}); err != nil {
		t.Fatal("help must succeed")
	}
}

func TestCLIViz(t *testing.T) {
	dir := t.TempDir()
	events := filepath.Join(dir, "events.jsonl")
	view := filepath.Join(dir, "view.json")
	if err := run([]string{"generate", "-out", events, "-divisor", "100", "-seed", "5"}); err != nil {
		t.Fatalf("generate: %v", err)
	}
	if err := run([]string{"viz", "-data", events, "-out", view, "-topics", "6", "-ascii=false"}); err != nil {
		t.Fatalf("viz: %v", err)
	}
	if _, err := os.Stat(view); err != nil {
		t.Fatalf("view JSON missing: %v", err)
	}
	if err := run([]string{"viz"}); err == nil {
		t.Fatal("viz without -data must fail")
	}
}
