package main

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// misusectlMention captures the word following "misusectl" in prose or
// shell snippets: the subcommand the docs claim exists.
var misusectlMention = regexp.MustCompile(`misusectl\s+([a-z][a-z-]*)`)

// TestDocsConsistency cross-checks the operator documentation against
// the real CLI: every `misusectl <subcommand>` named in README.md or
// OPERATIONS.md must be a registered subcommand, and every registered
// subcommand must be documented in the README — so the docs can never
// drift ahead of or behind commands.go. (The CI docs-consistency step
// runs exactly this test.)
func TestDocsConsistency(t *testing.T) {
	// "help" is a dispatcher built-in, not a registered subcommand.
	valid := map[string]bool{"help": true}
	for _, name := range subcommandNames() {
		valid[name] = true
	}

	mentioned := map[string]bool{}
	var corpus strings.Builder
	for _, doc := range []string{"README.md", "OPERATIONS.md"} {
		path := filepath.Join("..", "..", doc)
		blob, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("read %s: %v (the top-level operator docs are required)", doc, err)
		}
		corpus.Write(blob)
		for _, m := range misusectlMention.FindAllStringSubmatch(string(blob), -1) {
			name := m[1]
			mentioned[name] = true
			if !valid[name] {
				t.Errorf("%s names `misusectl %s`, which is not a registered subcommand (have: %s)",
					doc, name, strings.Join(subcommandNames(), ", "))
			}
		}
	}
	// A subcommand also counts as documented when it appears as a
	// backticked name (the README's subcommand list).
	for _, name := range subcommandNames() {
		if strings.Contains(corpus.String(), "`"+name+"`") {
			mentioned[name] = true
		}
	}
	if len(mentioned) == 0 {
		t.Fatal("the docs never mention a misusectl subcommand; the consistency check is vacuous")
	}
	for _, name := range subcommandNames() {
		if !mentioned[name] {
			t.Errorf("subcommand %q is not mentioned in README.md or OPERATIONS.md", name)
		}
	}
}
