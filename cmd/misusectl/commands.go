package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"os"
	"time"

	"misusedetect/internal/actionlog"
	"misusedetect/internal/core"
	"misusedetect/internal/experiments"
	"misusedetect/internal/lda"
	"misusedetect/internal/logsim"
	"misusedetect/internal/nn"
	"misusedetect/internal/viz"
)

func cmdGenerate(args []string) error {
	fs := newFlagSet("generate")
	out := fs.String("out", "events.jsonl", "output event log path")
	divisor := fs.Int("divisor", 10, "corpus scale divisor (1 = paper scale, ~15000 sessions)")
	seed := fs.Int64("seed", 1, "generation seed")
	misuse := fs.Int("misuse", 0, "number of scripted misuse sessions to inject")
	if err := fs.Parse(args); err != nil {
		return err
	}
	corpus, err := logsim.Generate(logsim.ScaledConfig(*seed, *divisor))
	if err != nil {
		return err
	}
	sessions := corpus.Sessions
	if *misuse > 0 {
		var ids []string
		sessions, ids, err = logsim.InjectMisuse(sessions, *misuse, *seed+1)
		if err != nil {
			return err
		}
		fmt.Printf("injected %d misuse sessions: %v\n", len(ids), ids)
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := actionlog.WriteEvents(f, actionlog.Flatten(sessions)); err != nil {
		return err
	}
	stats, err := actionlog.ComputeLengthStats(sessions, 98)
	if err != nil {
		return err
	}
	fmt.Printf("wrote %s: %d sessions, %d actions vocabulary, mean length %.1f, p98 %.0f, max %.0f\n",
		*out, stats.Count, corpus.Vocabulary.Size(), stats.Mean, stats.PctValue, stats.Max)
	return nil
}

func loadSessions(path string) ([]*actionlog.Session, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	events, err := actionlog.ParseEvents(f)
	if err != nil {
		return nil, err
	}
	return actionlog.Reconstruct(events), nil
}

func cmdTrain(args []string) error {
	fs := newFlagSet("train")
	data := fs.String("data", "", "input event log (JSONL)")
	modelDir := fs.String("model", "./model", "output model directory")
	clusters := fs.Int("clusters", 13, "number of behavior clusters")
	scale := fs.String("scale", "default", "model scale: test|bench|default|paper")
	backend := fs.String("backend", "lstm", "per-cluster sequence-model backend: lstm|ngram|hmm")
	seed := fs.Int64("seed", 1, "training seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *data == "" {
		return fmt.Errorf("train: -data is required")
	}
	sessions, err := loadSessions(*data)
	if err != nil {
		return err
	}
	vocab, err := actionlog.VocabularyFromSessions(sessions)
	if err != nil {
		return err
	}
	sc, err := experiments.ParseScale(*scale)
	if err != nil {
		return err
	}
	hidden, epochs, lr := scaleModel(sc)
	cfg := core.ScaledConfig(vocab.Size(), *clusters, hidden, epochs, *seed)
	cfg.LM.Trainer.LearningRate = lr
	cfg.Backend = *backend

	fmt.Printf("clustering %d sessions into %d behavior clusters...\n", len(sessions), *clusters)
	clustering, err := core.ClusterHistory(cfg, vocab, sessions)
	if err != nil {
		return err
	}
	parts, err := clustering.Partition()
	if err != nil {
		return err
	}
	for i, p := range parts {
		fmt.Printf("  cluster %d: %d sessions\n", i, len(p))
	}
	fmt.Printf("training per-cluster OC-SVMs and %s sequence models...\n", cfg.Backend)
	det, err := core.TrainDetector(cfg, vocab, parts, func(cluster int, st nn.EpochStats) {
		fmt.Printf("  cluster %d epoch %d: loss %.4f over %d predictions\n",
			cluster, st.Epoch, st.Loss, st.Examples)
	})
	if err != nil {
		return err
	}
	if err := det.Save(*modelDir); err != nil {
		return err
	}
	fmt.Printf("saved model to %s\n", *modelDir)
	return nil
}

// scaleModel maps an experiment scale to model hyperparameters.
func scaleModel(sc experiments.Scale) (hidden, epochs int, lr float64) {
	switch sc {
	case experiments.ScaleTest, experiments.ScaleBench:
		return 16, 4, 0.01
	case experiments.ScalePaper:
		return 256, 10, 0.001
	default:
		return 48, 6, 0.005
	}
}

func cmdScore(args []string) error {
	fs := newFlagSet("score")
	data := fs.String("data", "", "input event log (JSONL)")
	modelDir := fs.String("model", "./model", "model directory")
	top := fs.Int("top", 20, "print the N most suspicious sessions")
	jsonOut := fs.Bool("json", false, "emit JSON reports instead of text")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *data == "" {
		return fmt.Errorf("score: -data is required")
	}
	det, err := core.LoadDetector(*modelDir)
	if err != nil {
		return err
	}
	sessions, err := loadSessions(*data)
	if err != nil {
		return err
	}
	reports, err := det.RankSuspicious(sessions)
	if err != nil {
		return err
	}
	n := *top
	if n > len(reports) {
		n = len(reports)
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		for _, r := range reports[:n] {
			if err := enc.Encode(r); err != nil {
				return err
			}
		}
		return nil
	}
	fmt.Printf("%d sessions scored; %d most suspicious:\n", len(reports), n)
	for i, r := range reports[:n] {
		fmt.Printf("%3d. %-24s cluster=%2d likelihood=%.4f loss=%.4f perplexity=%.1f\n",
			i+1, r.SessionID, r.Cluster, r.Score.AvgLikelihood, r.Score.AvgLoss, r.Score.Perplexity)
	}
	return nil
}

func cmdMonitor(args []string) error {
	fs := newFlagSet("monitor")
	data := fs.String("data", "", "input event log (JSONL)")
	modelDir := fs.String("model", "./model", "model directory")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *data == "" {
		return fmt.Errorf("monitor: -data is required")
	}
	det, err := core.LoadDetector(*modelDir)
	if err != nil {
		return err
	}
	f, err := os.Open(*data)
	if err != nil {
		return err
	}
	defer f.Close()
	events, err := actionlog.ParseEvents(f)
	if err != nil {
		return err
	}
	monitors := make(map[string]*core.SessionMonitor)
	alarmed := make(map[string]bool)
	for _, ev := range events {
		mon, ok := monitors[ev.SessionID]
		if !ok {
			mon, err = det.NewSessionMonitor(core.DefaultMonitorConfig())
			if err != nil {
				return err
			}
			monitors[ev.SessionID] = mon
		}
		tok := det.Token(ev.Action)
		if tok < 0 {
			fmt.Printf("%s session=%s skipped action %q: outside the model vocabulary\n", ev.Time.Format("15:04:05"), ev.SessionID, ev.Action)
			continue
		}
		step, err := mon.ObserveToken(tok)
		if err != nil {
			fmt.Printf("%s session=%s skipped action %q: %v\n", ev.Time.Format("15:04:05"), ev.SessionID, ev.Action, err)
			continue
		}
		for _, kind := range step.Alarms {
			fmt.Printf("%s ALARM %-16s session=%s user=%s position=%d cluster=%d likelihood=%.4f\n",
				ev.Time.Format("15:04:05"), kind, ev.SessionID, ev.User, step.Position, step.Cluster, step.Smoothed)
			alarmed[ev.SessionID] = true
		}
	}
	fmt.Printf("monitored %d sessions, %d raised alarms\n", len(monitors), len(alarmed))
	return nil
}

func cmdViz(args []string) error {
	fs := newFlagSet("viz")
	data := fs.String("data", "", "input event log (JSONL)")
	out := fs.String("out", "view.json", "output view JSON path")
	topics := fs.Int("topics", 13, "LDA topic count for the ensemble center")
	seed := fs.Int64("seed", 1, "seed")
	ascii := fs.Bool("ascii", true, "render the projection to stdout")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *data == "" {
		return fmt.Errorf("viz: -data is required")
	}
	sessions, err := loadSessions(*data)
	if err != nil {
		return err
	}
	vocab, err := actionlog.VocabularyFromSessions(sessions)
	if err != nil {
		return err
	}
	docs, err := vocab.EncodeAll(sessions)
	if err != nil {
		return err
	}
	ens, err := lda.FitEnsemble(docs, vocab.Size(), lda.EnsembleConfig{
		TopicCounts:  []int{*topics - 3, *topics, *topics + 3},
		RunsPerCount: 1,
		Iterations:   100,
		Seed:         *seed,
	})
	if err != nil {
		return err
	}
	view, err := viz.Build(ens, vocab.Actions(), viz.DefaultConfig(*seed))
	if err != nil {
		return err
	}
	blob, err := json.MarshalIndent(view, "", " ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(*out, blob, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s: %d topics projected, %d matrix cells, %d chord links\n",
		*out, len(view.Projection), len(view.Matrix), len(view.Links))
	if *ascii {
		return view.RenderASCII(os.Stdout, 72, 18)
	}
	return nil
}

func cmdExperiment(args []string) error {
	fs := newFlagSet("experiment")
	id := fs.String("id", "all", "experiment id or 'all'")
	scale := fs.String("scale", "test", "scale: test|bench|default|paper")
	seed := fs.Int64("seed", 42, "experiment seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	sc, err := experiments.ParseScale(*scale)
	if err != nil {
		return err
	}
	fmt.Printf("building %s-scale setup (seed %d)...\n", sc, *seed)
	setup, err := experiments.NewSetup(sc, *seed)
	if err != nil {
		return err
	}
	var results []*experiments.Result
	if *id == "all" {
		results, err = experiments.RunAll(setup)
		if err != nil {
			return err
		}
	} else {
		res, err := experiments.Run(*id, setup)
		if err != nil {
			return err
		}
		results = append(results, res)
	}
	for _, res := range results {
		if err := res.Render(os.Stdout); err != nil {
			return err
		}
		fmt.Println()
	}
	return nil
}

func cmdInspect(args []string) error {
	fs := newFlagSet("inspect")
	modelDir := fs.String("model", "./model", "model directory")
	if err := fs.Parse(args); err != nil {
		return err
	}
	det, err := core.LoadDetector(*modelDir)
	if err != nil {
		return err
	}
	fmt.Printf("model: %s\n", *modelDir)
	fmt.Printf("backend: %s\n", det.Backend())
	fmt.Printf("vocabulary: %d actions\n", det.Vocabulary().Size())
	fmt.Printf("clusters: %d\n", det.ClusterCount())
	for i, c := range det.Clusters() {
		fmt.Printf("  cluster %2d: %5d training sessions, %4d support vectors, model vocab %d\n",
			i, c.TrainSize, c.Router.SupportVectorCount(), c.Model.VocabSize())
	}
	return nil
}

// statusReply mirrors the misused daemon's status line.
type statusReply struct {
	Status core.EngineStats `json:"status"`
	Uptime string           `json:"uptime"`
}

// reloadReply mirrors the misused daemon's reload line.
type reloadReply struct {
	Reload struct {
		Version  uint64  `json:"version"`
		Backend  string  `json:"backend"`
		Clusters int     `json:"clusters"`
		Canary   bool    `json:"canary"`
		Fraction float64 `json:"fraction"`
		Legacy   bool    `json:"legacy"`
	} `json:"reload"`
}

// controlRoundTrip sends one {"cmd":...} line to a misused daemon and
// returns the reply line. A reply carrying an "error" field is turned
// into an error.
func controlRoundTrip(addr, cmd string, timeout time.Duration) ([]byte, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("%s: dial %s: %w", cmd, addr, err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(timeout))
	if _, err := fmt.Fprintf(conn, "{\"cmd\":%q}\n", cmd); err != nil {
		return nil, fmt.Errorf("%s: request: %w", cmd, err)
	}
	line, err := bufio.NewReader(conn).ReadBytes('\n')
	if err != nil {
		return nil, fmt.Errorf("%s: read reply: %w", cmd, err)
	}
	var errReply struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(line, &errReply) == nil && errReply.Error != "" {
		return nil, fmt.Errorf("%s: daemon: %s", cmd, errReply.Error)
	}
	return line, nil
}

func cmdStatus(args []string) error {
	fs := newFlagSet("status")
	addr := fs.String("addr", "127.0.0.1:7074", "misused daemon address")
	timeout := fs.Duration("timeout", 5*time.Second, "dial/read timeout")
	jsonOut := fs.Bool("json", false, "print the raw status JSON line")
	if err := fs.Parse(args); err != nil {
		return err
	}
	line, err := controlRoundTrip(*addr, "status", *timeout)
	if err != nil {
		return err
	}
	if *jsonOut {
		fmt.Print(string(line))
		return nil
	}
	var reply statusReply
	if err := json.Unmarshal(line, &reply); err != nil {
		return fmt.Errorf("status: parse reply %q: %w", line, err)
	}
	st := reply.Status
	fmt.Printf("misused at %s (up %s)\n", *addr, reply.Uptime)
	fmt.Printf("  shards:           %d\n", st.Shards)
	fmt.Printf("  backend:          %s\n", st.Backend)
	fmt.Printf("  model version:    %d\n", st.ModelVersion)
	fmt.Printf("  reloads:          %d\n", st.Reloads)
	fmt.Printf("  events submitted: %d\n", st.EventsSubmitted)
	fmt.Printf("  events processed: %d\n", st.EventsProcessed)
	fmt.Printf("  events in flight: %d\n", st.EventsInFlight)
	fmt.Printf("  sessions live:    %d (%d compacted)\n", st.SessionsLive, st.SessionsCompacted)
	fmt.Printf("  session memory:   %s", core.FormatByteSize(st.MemBytes))
	if st.MemBudget > 0 {
		fmt.Printf(" of %s budget", core.FormatByteSize(st.MemBudget))
	}
	if st.MaxSessions > 0 {
		fmt.Printf(" (cap %d sessions)", st.MaxSessions)
	}
	fmt.Println()
	fmt.Printf("  compactions:      %d (%d rehydrations)\n", st.Compactions, st.Rehydrations)
	fmt.Printf("  alarms raised:    %d\n", st.AlarmsRaised)
	fmt.Printf("  evictions:        %d\n", st.Evictions)
	if st.ShedSessions+st.ShedEvents+st.ShedEvictions+st.AlarmsShed > 0 {
		fmt.Printf("  shed:             %d sessions refused (%d events), %d budget evictions, %d alarms dropped\n",
			st.ShedSessions, st.ShedEvents, st.ShedEvictions, st.AlarmsShed)
	}
	fmt.Printf("  score errors:     %d\n", st.ScoreErrors)
	return nil
}

func cmdReload(args []string) error {
	fs := newFlagSet("reload")
	addr := fs.String("addr", "127.0.0.1:7074", "misused daemon address")
	timeout := fs.Duration("timeout", 30*time.Second, "dial/read timeout (model loading included)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	line, err := controlRoundTrip(*addr, "reload", *timeout)
	if err != nil {
		return err
	}
	var reply reloadReply
	if err := json.Unmarshal(line, &reply); err != nil || reply.Reload.Version == 0 {
		return fmt.Errorf("reload: unexpected reply %q", line)
	}
	if reply.Reload.Canary {
		fmt.Printf("misused at %s staged canary: candidate version %d at fraction %.3f, backend %s, %d clusters (watch with misusectl canary)\n",
			*addr, reply.Reload.Version, reply.Reload.Fraction, reply.Reload.Backend, reply.Reload.Clusters)
	} else {
		fmt.Printf("misused at %s reloaded: model version %d, backend %s, %d clusters\n",
			*addr, reply.Reload.Version, reply.Reload.Backend, reply.Reload.Clusters)
	}
	if reply.Reload.Legacy {
		fmt.Printf("warning: model directory predates artifact checksums; loaded unverified\n")
	}
	return nil
}
