package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"
	"time"

	"misusedetect/internal/core"
	"misusedetect/internal/harness"
)

// loadTraffic builds the labeled evaluation workload shared by eval and
// bench.
func loadTraffic(source string, holdout int, seed int64, divisor, random, misuse int) (*harness.Traffic, error) {
	switch source {
	case "corpus":
		return harness.CorpusTraffic(holdout)
	case "sim":
		return harness.SimTraffic(harness.SimConfig{
			Seed:           seed,
			Divisor:        divisor,
			RandomSessions: random,
			MisuseSessions: misuse,
		})
	default:
		return nil, fmt.Errorf("unknown traffic source %q (want corpus or sim)", source)
	}
}

func splitBackends(s string) []string {
	var out []string
	for _, b := range strings.Split(s, ",") {
		if b = strings.TrimSpace(b); b != "" {
			out = append(out, b)
		}
	}
	return out
}

func splitShardCounts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad shard count %q", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no shard counts given")
	}
	return out, nil
}

func cmdEval(args []string) error {
	fs := newFlagSet("eval")
	source := fs.String("source", "corpus", "traffic source: corpus (embedded) or sim (fresh logsim run)")
	holdout := fs.Int("holdout", 2, "held-out normal sessions per cluster (corpus source)")
	divisor := fs.Int("divisor", 100, "logsim corpus scale divisor (sim source)")
	random := fs.Int("random", 30, "random anomaly sessions (sim source)")
	misuse := fs.Int("misuse", 15, "scripted misuse sessions (sim source)")
	backends := fs.String("backends", "lstm,ngram,hmm", "comma-separated scorer backends to evaluate")
	modelDir := fs.String("model", "", "evaluate and calibrate an existing model directory instead of training per backend")
	fpr := fs.Float64("fpr", 0.05, "false-positive budget for calibration and the TPR operating point")
	hidden := fs.Int("hidden", 16, "LSTM hidden units")
	epochs := fs.Int("epochs", 4, "LSTM training epochs")
	shards := fs.Int("shards", 4, "engine shard count for the alarm-level replay")
	seed := fs.Int64("seed", 11, "training and simulation seed")
	jsonOut := fs.Bool("json", false, "emit the full report as JSON")
	minAUC := fs.Float64("min-auc", 0, "exit nonzero when any backend's AUC falls below this floor (CI gate)")
	thresholds := fs.String("thresholds", "", "write the calibrated monitor fragment to this path (single backend only)")
	addr := fs.String("addr", "", "replay against a live misused daemon at this address instead of in-process")
	timeout := fs.Duration("timeout", 2*time.Minute, "wire-mode replay deadline")
	if err := fs.Parse(args); err != nil {
		return err
	}
	tr, err := loadTraffic(*source, *holdout, *seed, *divisor, *random, *misuse)
	if err != nil {
		return err
	}

	if *addr != "" {
		// Wire mode observes alarms, not scores: there is no AUC to gate
		// on and no model in hand to calibrate, so accepting these flags
		// would silently disable the checks the caller asked for.
		if *minAUC != 0 {
			return fmt.Errorf("eval: -min-auc requires an in-process evaluation (drop -addr)")
		}
		if *thresholds != "" {
			return fmt.Errorf("eval: -thresholds requires an in-process evaluation (drop -addr)")
		}
		rep, err := harness.ReplayWire(*addr, tr.EvalSessions(), *timeout)
		if err != nil {
			return err
		}
		if *jsonOut {
			return json.NewEncoder(os.Stdout).Encode(rep)
		}
		fmt.Printf("wire replay against %s (backend %s, model v%d, %d shards)\n",
			rep.Addr, rep.Backend, rep.ModelVersion, rep.Shards)
		fmt.Printf("  events:          %d\n", rep.Events)
		fmt.Printf("  anomalies:       %d/%d detected", rep.DetectedAnomalies, rep.AnomalySessions)
		if rep.MeanTimeToDetection > 0 {
			fmt.Printf(" (mean time-to-detection %.1f actions)", rep.MeanTimeToDetection)
		}
		fmt.Println()
		for _, kind := range sortedIntKeys(rep.DetectedByKind) {
			fmt.Printf("    %-18s %d", kind, rep.DetectedByKind[kind])
			if ttd := rep.TTDByKind[kind]; ttd > 0 {
				fmt.Printf(" (mean TTD %.1f actions)", ttd)
			}
			fmt.Println()
		}
		fmt.Printf("  false alarms:    %d/%d normal sessions\n", rep.AlarmedNormals, rep.NormalSessions)
		for _, kind := range sortedIntKeys(rep.AlarmedNormalsByKind) {
			fmt.Printf("    %-18s %d\n", kind, rep.AlarmedNormalsByKind[kind])
		}
		return nil
	}

	opts := harness.EvalOptions{
		Backends:  splitBackends(*backends),
		FPRBudget: *fpr,
		Hidden:    *hidden,
		Epochs:    *epochs,
		Shards:    *shards,
		Seed:      *seed,
	}
	var report *harness.EvalReport
	if *modelDir != "" {
		// Evaluate the model a daemon would actually serve: thresholds
		// written below are calibrated for exactly these weights.
		det, err := core.LoadDetector(*modelDir)
		if err != nil {
			return err
		}
		br, err := harness.EvalDetector(det, tr, opts)
		if err != nil {
			return err
		}
		report = &harness.EvalReport{
			Source:          tr.Source,
			Vocabulary:      det.Vocabulary().Size(),
			ClusterCount:    det.ClusterCount(),
			TrainSessions:   tr.TrainCount(),
			HoldoutSessions: len(tr.Holdout),
			AnomalySessions: len(tr.Anomalies),
			FPRBudget:       opts.FPRBudget,
			Backends:        []harness.BackendReport{br},
		}
	} else {
		if *thresholds != "" && len(opts.Backends) != 1 {
			return fmt.Errorf("eval: -thresholds needs exactly one backend (or -model), got %d", len(opts.Backends))
		}
		if report, err = harness.Eval(tr, opts); err != nil {
			return err
		}
	}
	if *thresholds != "" {
		if err := core.SaveMonitorConfig(*thresholds, report.Backends[0].Calibrated); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote calibrated thresholds to %s\n", *thresholds)
	}
	if *jsonOut {
		if err := json.NewEncoder(os.Stdout).Encode(report); err != nil {
			return err
		}
	} else {
		renderEvalReport(report)
	}
	for _, br := range report.Backends {
		if br.AUC < *minAUC {
			return fmt.Errorf("eval: backend %s AUC %.3f below the -min-auc floor %.3f", br.Backend, br.AUC, *minAUC)
		}
	}
	return nil
}

func renderEvalReport(report *harness.EvalReport) {
	fmt.Printf("eval on %s traffic: %d train / %d holdout / %d anomalous sessions, %d clusters, FPR budget %.0f%%\n",
		report.Source, report.TrainSessions, report.HoldoutSessions, report.AnomalySessions,
		report.ClusterCount, report.FPRBudget*100)
	for _, br := range report.Backends {
		fmt.Printf("\nbackend %s (trained in %.1fs)\n", br.Backend, br.TrainSeconds)
		fmt.Printf("  AUC:             %.3f\n", br.AUC)
		fmt.Printf("  TPR@%.0f%%FPR:      %.3f (score threshold %.5f)\n", br.FPRBudget*100, br.TPRAtBudget, br.ScoreThreshold)
		fmt.Printf("  precision:       %.3f   recall: %.3f\n", br.Precision, br.Recall)
		fmt.Printf("  calibrated floor: %.5f global, %d per-cluster floors\n",
			br.Calibrated.LikelihoodFloor, len(br.Calibrated.ClusterFloors))
		rp := br.Replay
		fmt.Printf("  engine replay (%d shards, %d events): %d/%d anomalies detected, %d/%d normals alarmed",
			rp.Shards, rp.Events, rp.DetectedAnomalies, rp.AnomalySessions, rp.AlarmedNormals, rp.NormalSessions)
		if rp.MeanTimeToDetection > 0 {
			fmt.Printf(", mean TTD %.1f actions", rp.MeanTimeToDetection)
		}
		fmt.Println()
		if len(br.Scenarios) > 0 {
			fmt.Printf("  per-scenario breakdown at the %.0f%%-FPR operating point:\n", br.FPRBudget*100)
			fmt.Printf("    %-16s %8s %9s %11s %12s %9s %8s\n",
				"scenario", "sessions", "campaigns", "tpr@budget", "false-alarms", "detected", "ttd")
			for _, s := range br.Scenarios {
				camps := "-"
				if s.Campaigns > 0 {
					camps = fmt.Sprintf("%d/%d", s.DetectedCampaigns, s.Campaigns)
				}
				fmt.Printf("    %-16s %8d %9s %11s %12s %9d %8s\n",
					s.Scenario, s.Sessions, camps, fmtRate(s.TPRAtBudget), fmtRate(s.FalseAlarmRate),
					s.DetectedSessions, fmtTTD(s.MeanTimeToDetection))
			}
		}
		for _, cr := range br.Clusters {
			if cr.Normals == 0 && cr.Anomalies == 0 {
				continue
			}
			auc := "    -"
			if cr.AUC >= 0 {
				auc = fmt.Sprintf("%.3f", cr.AUC)
			}
			fmt.Printf("    cluster %2d: %3d normal %3d anomalous  AUC %s  floor %.5f\n",
				cr.Cluster, cr.Normals, cr.Anomalies, auc, cr.Floor)
		}
	}
}

func cmdBench(args []string) error {
	fs := newFlagSet("bench")
	source := fs.String("source", "corpus", "traffic source: corpus or sim")
	holdout := fs.Int("holdout", 2, "held-out normal sessions per cluster (corpus source)")
	divisor := fs.Int("divisor", 100, "logsim corpus scale divisor (sim source)")
	backends := fs.String("backends", "lstm,ngram,hmm", "comma-separated scorer backends to bench (in-process mode)")
	shards := fs.String("shards", "1,4", "comma-separated engine shard counts")
	batch := fs.String("batch", "1", "comma-separated submission batch sizes: 1 = one event per submit/wire line, N = SubmitBatch / one {\"batch\":[...]} frame per N events")
	events := fs.Int("events", 20000, "events streamed per run")
	queue := fs.Int("queue", 0, "per-shard queue depth (0 = engine default)")
	hidden := fs.Int("hidden", 16, "LSTM hidden units")
	epochs := fs.Int("epochs", 4, "LSTM training epochs")
	seed := fs.Int64("seed", 11, "training and simulation seed")
	jsonOut := fs.Bool("json", false, "emit one JSON report object (the BENCH_ingest.json format)")
	addr := fs.String("addr", "", "also bench a live misused daemon at this address over the wire (appended to the report)")
	wireOnly := fs.Bool("wire-only", false, "with -addr: skip the in-process engine sweep")
	minSpeedup := fs.Float64("min-batch-speedup", 0, "exit nonzero when a wire-mode batched run's events/sec falls below this multiple of its batch-1 baseline (CI gate; needs -addr and batch sizes 1 and >1)")
	timeout := fs.Duration("timeout", 5*time.Minute, "wire-mode deadline")
	lstmMode := fs.Bool("lstm", false, "run the LSTM micro-batch sweep (weight precision x engine ScoreBatch) instead of the ingest sweep; -json emits the BENCH_lstm.json format")
	lstmBatch := fs.String("lstm-batch", "1,64", "comma-separated engine ScoreBatch values for -lstm (1 is the serial reference)")
	quant := fs.String("quant", "f64,int8,f16", "comma-separated weight precisions for -lstm: f64, int8, f16")
	minLSTMSpeedup := fs.Float64("min-lstm-speedup", 0, "with -lstm: exit nonzero when the f64 batch speedup falls below this multiple (CI gate; needs quant f64 and ScoreBatch 1 plus a larger value)")
	soakMode := fs.Bool("soak", false, "run the memory soak (fill N sessions, compact, touch, flush) instead of the ingest sweep; -json emits the BENCH_soak.json format")
	soakSessions := fs.Int("soak-sessions", 50000, "with -soak: distinct sessions held resident (the local acceptance run uses 1000000)")
	soakActions := fs.Int("soak-actions", 8, "with -soak: actions submitted per session")
	soakCeiling := fs.String("soak-ceiling", "", "with -soak: heap ceiling as a byte size (e.g. 512m, 2g); doubles as the engine MemBudget, and the run fails if the settled live heap exceeds it or anything was shed below it (CI gate)")
	soakMaxSessions := fs.Int("soak-max-sessions", 0, "with -soak: engine MaxSessions admission cap (0 = uncapped)")
	soakFlash := fs.Int("soak-flash", 0, "with -soak: drive a benign flash-crowd surge of this many brand-new sessions at the filled engine; combined with -soak-max-sessions it becomes a CI gate — the surge must be shed at admission with zero alarms")
	maxSoakP99 := fs.Duration("max-soak-p99", 0, "with -soak: exit nonzero when the fill's p99 per-batch ingest latency exceeds this (CI gate)")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile of the bench run to this file")
	memProfile := fs.String("memprofile", "", "write a heap profile (after a forced GC) to this file when the bench finishes")
	if err := fs.Parse(args); err != nil {
		return err
	}
	tr, err := loadTraffic(*source, *holdout, *seed, *divisor, 30, 15)
	if err != nil {
		return err
	}
	shardCounts, err := splitShardCounts(*shards)
	if err != nil {
		return fmt.Errorf("bench: %w", err)
	}
	batchSizes, err := splitShardCounts(*batch)
	if err != nil {
		return fmt.Errorf("bench: bad -batch: %w", err)
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return fmt.Errorf("bench: -cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return fmt.Errorf("bench: -cpuprofile: %w", err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		// Written on every exit path (gate failures included) so a
		// failing CI run still leaves a profile to diagnose.
		defer func() {
			if err := writeHeapProfile(*memProfile); err != nil {
				fmt.Fprintf(os.Stderr, "bench: -memprofile: %v\n", err)
			}
		}()
	}

	if *lstmMode {
		if *addr != "" || *wireOnly {
			return fmt.Errorf("bench: -lstm is in-process only (drop -addr / -wire-only)")
		}
		scoreBatches, err := splitShardCounts(*lstmBatch)
		if err != nil {
			return fmt.Errorf("bench: bad -lstm-batch: %w", err)
		}
		report, err := harness.BenchLSTM(tr, harness.LSTMBenchOptions{
			ScoreBatches: scoreBatches,
			Quants:       splitBackends(*quant),
			Events:       *events,
			Shards:       shardCounts[0],
			QueueDepth:   *queue,
			Hidden:       *hidden,
			Epochs:       *epochs,
			Seed:         *seed,
		})
		if err != nil {
			return err
		}
		if *jsonOut {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(report); err != nil {
				return err
			}
		} else {
			renderLSTMBenchReport(report)
		}
		if *minLSTMSpeedup > 0 {
			gated := 0
			for _, key := range sortedKeys(report.BatchSpeedup) {
				// Gate the f64 ratio only: it isolates the micro-batching
				// claim. Quantized ratios stay informational because their
				// serial baselines are already cheaper.
				if !strings.HasPrefix(key, "f64/") {
					continue
				}
				gated++
				if ratio := report.BatchSpeedup[key]; ratio < *minLSTMSpeedup {
					return fmt.Errorf("bench: lstm %s events/sec speedup %.2fx below the -min-lstm-speedup floor %.2fx", key, ratio, *minLSTMSpeedup)
				}
			}
			if gated == 0 {
				return fmt.Errorf("bench: -min-lstm-speedup needs quant f64 and -lstm-batch with 1 and a larger value in the same run")
			}
		}
		return nil
	}

	if *soakMode {
		if *addr != "" || *wireOnly {
			return fmt.Errorf("bench: -soak is in-process only (drop -addr / -wire-only)")
		}
		var ceiling int64
		if *soakCeiling != "" {
			if ceiling, err = core.ParseByteSize(*soakCeiling); err != nil {
				return fmt.Errorf("bench: -soak-ceiling: %w", err)
			}
		}
		report, err := harness.BenchSoak(tr, harness.SoakOptions{
			Sessions:      *soakSessions,
			Actions:       *soakActions,
			Shards:        shardCounts[0],
			QueueDepth:    *queue,
			Hidden:        *hidden,
			Epochs:        *epochs,
			Seed:          *seed,
			MemBudget:     ceiling,
			MaxSessions:   *soakMaxSessions,
			FlashSessions: *soakFlash,
		})
		if err != nil {
			return err
		}
		if *jsonOut {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(report); err != nil {
				return err
			}
		} else {
			renderSoakReport(report)
		}
		if ceiling > 0 {
			if report.HeapLiveBytes > uint64(ceiling) {
				return fmt.Errorf("bench: soak live heap %s exceeds the -soak-ceiling %s",
					core.FormatByteSize(int64(report.HeapLiveBytes)), core.FormatByteSize(ceiling))
			}
			// Below the ceiling the engine must never have refused or
			// evicted anything: a shed under headroom is an accounting or
			// policy bug, not load. A -soak-flash surge's sheds are excluded
			// — being refused is what the surge is for.
			shed := (report.ShedSessions - report.FlashShedSessions) +
				(report.ShedEvents - report.FlashShedEvents) +
				(report.ShedEvictions - report.FlashShedEvictions) +
				report.AlarmsShed
			if shed > 0 {
				return fmt.Errorf("bench: soak shed %d (sessions %d, events %d, evictions %d, alarms %d) below the -soak-ceiling %s",
					shed, report.ShedSessions, report.ShedEvents, report.ShedEvictions, report.AlarmsShed, core.FormatByteSize(ceiling))
			}
		}
		if *soakFlash > 0 && *soakMaxSessions > 0 {
			// The flash gate only holds in admission-refusal mode: under a
			// MemBudget alone the surge is admitted, scored, and alarmed on
			// like any other traffic, so zero-alarm is not a valid check
			// there.
			if report.FlashShedSessions == 0 || report.FlashShedEvents == 0 {
				return fmt.Errorf("bench: soak flash surge of %d sessions was admitted past the -soak-max-sessions cap %d (shed sessions %d, events %d)",
					*soakFlash, *soakMaxSessions, report.FlashShedSessions, report.FlashShedEvents)
			}
			if report.FlashAlarms != 0 {
				return fmt.Errorf("bench: soak flash surge raised %d alarms, want 0 (benign refused traffic is never scored)", report.FlashAlarms)
			}
			if report.AlarmsShed != 0 {
				return fmt.Errorf("bench: soak attributed %d alarms to shedding, want 0", report.AlarmsShed)
			}
		}
		if *maxSoakP99 > 0 {
			p99 := time.Duration(report.Ingest.P99 * float64(time.Microsecond))
			if p99 > *maxSoakP99 {
				return fmt.Errorf("bench: soak p99 ingest latency %s above the -max-soak-p99 gate %s", p99, *maxSoakP99)
			}
		}
		return nil
	}

	var results []harness.BenchResult
	if !*wireOnly {
		for _, backend := range splitBackends(*backends) {
			res, err := harness.BenchEngine(tr, harness.BenchOptions{
				Backend:     backend,
				ShardCounts: shardCounts,
				BatchSizes:  batchSizes,
				Events:      *events,
				QueueDepth:  *queue,
				Hidden:      *hidden,
				Epochs:      *epochs,
				Seed:        *seed,
			})
			if err != nil {
				return err
			}
			results = append(results, res...)
		}
	} else if *addr == "" {
		return fmt.Errorf("bench: -wire-only needs -addr")
	}
	if *addr != "" {
		res, err := harness.BenchWire(*addr, tr, harness.BenchOptions{Events: *events, BatchSizes: batchSizes}, *timeout)
		if err != nil {
			return err
		}
		results = append(results, res...)
	}

	report := harness.NewBenchReport(results)
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			return err
		}
	} else {
		renderBenchHeader()
		for _, r := range report.Results {
			renderBenchResult(r)
		}
		for group, ratio := range report.BatchSpeedup() {
			fmt.Printf("batch speedup %s: %.2fx\n", group, ratio)
		}
	}
	if *minSpeedup > 0 {
		// Gate the wire groups only: frame batching is a wire-protocol
		// claim (amortized syscalls, parses, and queue handoffs); the
		// in-process Submit baseline has none of those costs to save,
		// so its ratios stay informational.
		gated := 0
		for group, ratio := range report.BatchSpeedup() {
			if !strings.HasPrefix(group, "wire/") {
				continue
			}
			gated++
			if ratio < *minSpeedup {
				return fmt.Errorf("bench: %s events/sec speedup %.2fx below the -min-batch-speedup floor %.2fx", group, ratio, *minSpeedup)
			}
		}
		if gated == 0 {
			return fmt.Errorf("bench: -min-batch-speedup needs -addr and batch sizes 1 and >1 in the same run")
		}
	}
	return nil
}

func writeHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	// Force a collection first so the profile shows live heap, not
	// garbage awaiting the next GC cycle.
	runtime.GC()
	return pprof.WriteHeapProfile(f)
}

// fmtRate renders a per-scenario rate, where -1 is the "not applicable
// for this class" sentinel (TPR on benign rows, FAR on anomalous ones).
func fmtRate(v float64) string {
	if v < 0 {
		return "-"
	}
	return fmt.Sprintf("%.3f", v)
}

// fmtTTD renders a mean time-to-detection in actions (-1 when the class
// was never detected, or is benign).
func fmtTTD(v float64) string {
	if v <= 0 {
		return "-"
	}
	return fmt.Sprintf("%.1f", v)
}

func sortedIntKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func sortedKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func renderLSTMBenchReport(r *harness.LSTMBenchReport) {
	fmt.Printf("lstm micro-batch bench: hidden %d, %d interleaved sessions, %s %s/%s, %d cpus\n",
		r.Hidden, r.Concurrency, r.GoVersion, r.GOOS, r.GOARCH, r.NumCPU)
	fmt.Printf("%-6s %11s %6s %8s %12s %9s %6s\n",
		"quant", "score_batch", "shards", "events", "events/sec", "wall (s)", "alarms")
	for _, res := range r.Results {
		fmt.Printf("%-6s %11d %6d %8d %12.0f %9.2f %6d\n",
			res.Quant, res.ScoreBatch, res.Shards, res.Events, res.EventsPerSec, res.WallSeconds, res.Alarms)
	}
	for _, key := range sortedKeys(r.BatchSpeedup) {
		fmt.Printf("lstm batch speedup %s: %.2fx\n", key, r.BatchSpeedup[key])
	}
	for _, key := range sortedKeys(r.QuantThroughput) {
		fmt.Printf("quant throughput %s vs f64: %.2fx\n", key, r.QuantThroughput[key])
	}
}

func renderSoakReport(r *harness.SoakReport) {
	fmt.Printf("memory soak: %d sessions x %d actions, backend %s hidden %d, %d shards, %s %s/%s, %d cpus\n",
		r.Sessions, r.ActionsPerSession, r.Backend, r.Hidden, r.Shards, r.GoVersion, r.GOOS, r.GOARCH, r.NumCPU)
	fmt.Printf("  fill:            %d events in %.1fs (%.0f events/sec), ingest p50/p99 %.1f/%.1f us per batch\n",
		r.Events, r.FillSeconds, r.FillEventsPerSec, r.Ingest.P50, r.Ingest.P99)
	fmt.Printf("  resident:        %d sessions (%d compacted, %d compactions)\n",
		r.SessionsResident, r.SessionsCompacted, r.Compactions)
	fmt.Printf("  heap:            %s baseline -> %s live (%.0f B/session settled)\n",
		core.FormatByteSize(int64(r.HeapBaselineBytes)), core.FormatByteSize(int64(r.HeapLiveBytes)), r.HeapPerSessionBytes)
	fmt.Printf("  accounted:       %s engine gauge", core.FormatByteSize(r.MemAccountedBytes))
	if r.MemBudgetBytes > 0 {
		fmt.Printf(" (budget %s)", core.FormatByteSize(r.MemBudgetBytes))
	}
	fmt.Println()
	fmt.Printf("  touch:           %d sessions, %d rehydrations, p50/p99 %.1f/%.1f us\n",
		r.TouchSessions, r.TouchRehydrations, r.Touch.P50, r.Touch.P99)
	fmt.Printf("  shed:            %d sessions, %d events, %d budget evictions, %d alarms\n",
		r.ShedSessions, r.ShedEvents, r.ShedEvictions, r.AlarmsShed)
	if r.FlashSessions > 0 {
		fmt.Printf("  flash surge:     %d sessions in %.1fs, shed %d sessions / %d events / %d evictions, %d alarms, p50/p99 %.1f/%.1f us per batch\n",
			r.FlashSessions, r.FlashSeconds, r.FlashShedSessions, r.FlashShedEvents, r.FlashShedEvictions, r.FlashAlarms, r.Flash.P50, r.Flash.P99)
	}
	fmt.Printf("  flush:           %d sessions ended in %.1fs (%.0f evictions/sec), %d alarms raised\n",
		r.SessionsResident, r.FlushSeconds, r.EvictionsPerSec, r.Alarms)
}

func renderBenchHeader() {
	fmt.Printf("%-6s %-7s %6s %5s %8s %9s %12s  %-26s %-26s %9s %6s\n",
		"mode", "backend", "shards", "batch", "events", "sessions", "events/sec",
		"ingest p50/p95/p99 (us)", "score p50/p95/p99 (us)", "allocs/ev", "alarms")
}

func renderBenchResult(r harness.BenchResult) {
	fmt.Printf("%-6s %-7s %6d %5d %8d %9d %12.0f  %8.1f/%8.1f/%8.1f %8.1f/%8.1f/%8.1f %9.2f %6d\n",
		r.Mode, r.Backend, r.Shards, r.Batch, r.Events, r.Sessions, r.EventsPerSec,
		r.Ingest.P50, r.Ingest.P95, r.Ingest.P99,
		r.Score.P50, r.Score.P95, r.Score.P99, r.SubmitAllocsPerEvent, r.Alarms)
}
