package main

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"misusedetect/internal/core"
	"misusedetect/internal/drift"
	"misusedetect/internal/pipeline"
)

// driftReply mirrors the misused daemon's drift line.
type driftReply struct {
	Drift pipeline.Status `json:"drift"`
}

// adaptReply mirrors the misused daemon's adapt line.
type adaptReply struct {
	Adapt *pipeline.CycleReport `json:"adapt"`
}

func cmdDrift(args []string) error {
	fs := newFlagSet("drift")
	addr := fs.String("addr", "127.0.0.1:7074", "misused daemon address")
	timeout := fs.Duration("timeout", 5*time.Second, "dial/read timeout")
	jsonOut := fs.Bool("json", false, "print the raw drift JSON line")
	if err := fs.Parse(args); err != nil {
		return err
	}
	line, err := controlRoundTrip(*addr, "drift", *timeout)
	if err != nil {
		return err
	}
	if *jsonOut {
		fmt.Print(string(line))
		return nil
	}
	var reply driftReply
	if err := json.Unmarshal(line, &reply); err != nil {
		return fmt.Errorf("drift: parse reply %q: %w", line, err)
	}
	renderDriftStatus(*addr, reply.Drift)
	return nil
}

func renderDriftStatus(addr string, st pipeline.Status) {
	fmt.Printf("adaptation pipeline at %s (serving model version %d)\n", addr, st.ServingVersion)
	fmt.Printf("  drifted:          %v\n", st.Drift.Drifted)
	fmt.Printf("  sessions watched: %d\n", st.Drift.Sessions)
	fmt.Printf("  unknown-action rate: %.4f (drifted %v)\n", st.Drift.UnknownRate, st.Drift.UnknownDrifted)
	fmt.Printf("  candidate buffer: %d/%d (min %d for a cycle, %d dropped)\n",
		st.Buffered, st.BufferCap, st.MinSessions, st.DroppedSessions)
	fmt.Printf("  auto-cycle:       %v (pending signal %v, cycle running %v)\n",
		st.AutoCycle, st.PendingSignal, st.CycleRunning)
	fmt.Printf("  cycles:           %d (%d swapped, %d refused)\n", st.Cycles, st.Swaps, st.Refusals)
	if st.LastError != "" {
		fmt.Printf("  last error:       %s\n", st.LastError)
	}
	g := st.Drift.Global
	fmt.Printf("  global bank:      %d obs, mean %.4f, PH %.3f/%.3f, KS %.3f (ref %d)\n",
		g.Observations, g.Mean, g.PHStatistic, g.PHLambda, g.KSStatistic, g.KSReference)
	for _, b := range st.Drift.Clusters {
		if b.Observations == 0 {
			continue
		}
		mark := " "
		if b.PHDrifted || b.KSDrifted {
			mark = "!"
		}
		fmt.Printf("  %s cluster %2d:     %4d obs, mean %.4f, PH %.3f, KS %.3f\n",
			mark, b.Cluster, b.Observations, b.Mean, b.PHStatistic, b.KSStatistic)
	}
	for _, s := range st.Drift.Signals {
		fmt.Printf("  signal: %-12s cluster %2d at session %d (%.4f > %.4f) %s\n",
			s.Detector, s.Cluster, s.Sessions, s.Value, s.Threshold, s.Reason)
	}
	if st.LastCycle != nil {
		renderCycleReport(st.LastCycle)
	}
}

func renderCycleReport(rep *pipeline.CycleReport) {
	verdict := "refused"
	if rep.Swapped {
		verdict = fmt.Sprintf("swapped in version %d", rep.NewVersion)
	}
	fmt.Printf("last cycle (%s, %.1fs): %s\n", rep.Reason, rep.DurationSeconds, verdict)
	fmt.Printf("  candidates:  %d buffered, %d trained, %d held out, %d skipped\n",
		rep.Candidates, rep.TrainSessions, rep.HoldoutNormals, rep.SkippedSessions)
	fmt.Printf("  clusters:    %d retrained, %d distilled\n", len(rep.RetrainedClusters), len(rep.DistilledClusters))
	fmt.Printf("  vocabulary:  %d -> %d actions\n", rep.VocabBefore, rep.VocabAfter)
	fmt.Printf("  guardrail:   new AUC %.3f vs serving %.3f (tolerance %.3f)\n",
		rep.NewAUC, rep.OldAUC, rep.GuardrailDelta)
	if rep.Refused != "" {
		fmt.Printf("  refused:     %s\n", rep.Refused)
	}
	if rep.Calibrated != nil {
		fmt.Printf("  floors:      global %.5f, %d per-cluster\n",
			rep.Calibrated.LikelihoodFloor, len(rep.Calibrated.ClusterFloors))
	}
	if rep.ModelDir != "" {
		fmt.Printf("  saved to:    %s\n", rep.ModelDir)
	}
}

func cmdAdapt(args []string) error {
	fs := newFlagSet("adapt")
	once := fs.Bool("once", false, "run exactly one retrain cycle (required; continuous mode is the daemon's -adapt)")
	addr := fs.String("addr", "", "run the cycle inside a live misused daemon at this address")
	modelDir := fs.String("model", "", "offline mode: model directory to adapt")
	data := fs.String("data", "", "offline mode: event log (JSONL) supplying the candidate sessions")
	root := fs.String("root", "", "offline mode: directory receiving the adapted generation (gen-NNNN)")
	monitorPath := fs.String("monitor", "", "offline mode: calibrated monitor fragment classifying the candidate sessions; empty uses defaults")
	backend := fs.String("backend", "", "offline mode: retrain backend override (lstm|ngram|hmm; empty keeps the model's)")
	minSessions := fs.Int("min-sessions", 60, "offline mode: minimum candidate sessions")
	guardrail := fs.Float64("guardrail", 0.05, "offline mode: tolerated held-out AUC regression before the cycle is refused")
	fpr := fs.Float64("fpr", 0.05, "offline mode: false-positive budget for floor recalibration")
	seed := fs.Int64("seed", 17, "offline mode: retraining and guardrail seed")
	timeout := fs.Duration("timeout", 10*time.Minute, "daemon-mode dial/read timeout (covers retraining)")
	jsonOut := fs.Bool("json", false, "emit the cycle report as JSON")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if !*once {
		return fmt.Errorf("adapt: pass -once (continuous adaptation runs inside the daemon via misused -adapt)")
	}

	var rep *pipeline.CycleReport
	switch {
	case *addr != "":
		line, err := controlRoundTrip(*addr, "adapt", *timeout)
		if err != nil {
			return err
		}
		var reply adaptReply
		if err := json.Unmarshal(line, &reply); err != nil || reply.Adapt == nil {
			return fmt.Errorf("adapt: unexpected reply %q", line)
		}
		rep = reply.Adapt
	case *modelDir != "" && *data != "":
		var err error
		if rep, err = adaptOffline(*modelDir, *data, *root, *monitorPath, *backend, *minSessions, *guardrail, *fpr, *seed); err != nil {
			return err
		}
	default:
		return fmt.Errorf("adapt: need either -addr (live daemon) or -model with -data (offline)")
	}

	if *jsonOut {
		if err := json.NewEncoder(os.Stdout).Encode(rep); err != nil {
			return err
		}
	} else {
		renderCycleReport(rep)
	}
	if !rep.Swapped {
		return fmt.Errorf("adapt: cycle refused: %s", rep.Refused)
	}
	return nil
}

// adaptOffline runs one adaptation cycle in-process: classify the event
// log's sessions against the loaded model, buffer the alarm-free ones,
// retrain, guardrail-check, and (with -root) write the adapted
// generation next to its calibrated thresholds.
func adaptOffline(modelDir, data, root, monitorPath, backend string, minSessions int, guardrail, fpr float64, seed int64) (*pipeline.CycleReport, error) {
	det, err := core.LoadDetector(modelDir)
	if err != nil {
		return nil, err
	}
	monitor := core.DefaultMonitorConfig()
	if monitorPath != "" {
		if monitor, err = core.LoadMonitorConfig(monitorPath); err != nil {
			return nil, err
		}
	}
	sessions, err := loadSessions(data)
	if err != nil {
		return nil, err
	}
	sums, err := pipeline.ClassifySessions(det, monitor, sessions)
	if err != nil {
		return nil, err
	}
	reg, err := core.NewRegistry(det)
	if err != nil {
		return nil, err
	}
	adapter, err := pipeline.New(reg, pipeline.Config{
		Drift:          drift.DefaultConfig(),
		Monitor:        monitor,
		MinSessions:    minSessions,
		MaxBuffer:      len(sessions) + minSessions,
		GuardrailDelta: guardrail,
		FPRBudget:      fpr,
		ModelRoot:      root,
		Backend:        backend,
		Seed:           seed,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
	})
	if err != nil {
		return nil, err
	}
	alarmFree := 0
	for _, s := range sums {
		if s.Alarms == 0 {
			alarmFree++
		}
		adapter.OnSessionEnd(s)
	}
	fmt.Fprintf(os.Stderr, "classified %d sessions from %s: %d alarm-free candidates\n", len(sums), data, alarmFree)
	return adapter.Cycle("manual")
}
