package main

import (
	"encoding/json"
	"fmt"
	"time"

	"misusedetect/internal/rollout"
)

// canaryReply mirrors the misused daemon's canary-status line.
type canaryReply struct {
	Canary rollout.Status `json:"canary"`
}

// canaryVerdictReply mirrors the daemon's forced-decision line.
type canaryVerdictReply struct {
	Verdict *rollout.Verdict `json:"canary_verdict"`
}

// cmdCanary inspects a daemon's staged rollout ({"cmd":"canary"}) or
// force-decides the pending candidate (-promote / -rollback).
func cmdCanary(args []string) error {
	fs := newFlagSet("canary")
	addr := fs.String("addr", "127.0.0.1:7074", "misused daemon address")
	timeout := fs.Duration("timeout", 5*time.Second, "dial/read timeout")
	promote := fs.Bool("promote", false, "force-promote the pending candidate to serving")
	rollback := fs.Bool("rollback", false, "force-roll-back the pending candidate (quarantines its directory)")
	jsonOut := fs.Bool("json", false, "print the raw JSON reply line")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *promote && *rollback {
		return fmt.Errorf("canary: -promote and -rollback are mutually exclusive")
	}
	if *promote || *rollback {
		cmd := "canary-promote"
		if *rollback {
			cmd = "canary-rollback"
		}
		line, err := controlRoundTrip(*addr, cmd, *timeout)
		if err != nil {
			return err
		}
		if *jsonOut {
			fmt.Print(string(line))
			return nil
		}
		var reply canaryVerdictReply
		if err := json.Unmarshal(line, &reply); err != nil || reply.Verdict == nil {
			return fmt.Errorf("canary: unexpected reply %q", line)
		}
		printVerdict(reply.Verdict)
		return nil
	}
	line, err := controlRoundTrip(*addr, "canary", *timeout)
	if err != nil {
		return err
	}
	if *jsonOut {
		fmt.Print(string(line))
		return nil
	}
	var reply canaryReply
	if err := json.Unmarshal(line, &reply); err != nil {
		return fmt.Errorf("canary: parse reply %q: %w", line, err)
	}
	st := reply.Canary
	fmt.Printf("canary rollout at %s\n", *addr)
	fmt.Printf("  serving version:  %d\n", st.ServingVersion)
	if st.Active {
		fmt.Printf("  candidate:        version %d at fraction %.3f\n", st.CandidateVersion, st.Fraction)
		if st.CandidateDir != "" {
			fmt.Printf("  candidate dir:    %s\n", st.CandidateDir)
		}
	} else {
		fmt.Printf("  candidate:        none pending\n")
	}
	fmt.Printf("  min sessions/arm: %d\n", st.MinSessions)
	printArm("serving", st.Serving)
	printArm("canary", st.Canary)
	if st.LastVerdict != nil {
		fmt.Printf("  last verdict:     %s generation %d: %s\n",
			st.LastVerdict.Decision, st.LastVerdict.CandidateVersion, st.LastVerdict.Reason)
		if st.LastVerdict.QuarantinedDir != "" {
			fmt.Printf("  quarantined:      %s\n", st.LastVerdict.QuarantinedDir)
		}
	}
	return nil
}

func printArm(name string, a rollout.ArmReport) {
	mean := "-"
	if a.LikelihoodMean >= 0 {
		mean = fmt.Sprintf("%.4f", a.LikelihoodMean)
	}
	fmt.Printf("  %-8s arm:      %d sessions, %d alarmed (rate %.3f), mean likelihood %s\n",
		name, a.Sessions, a.AlarmedSessions, a.AlarmRate, mean)
}

func printVerdict(v *rollout.Verdict) {
	fmt.Printf("%s: candidate generation %d (serving %d)\n", v.Decision, v.CandidateVersion, v.ServingVersion)
	fmt.Printf("  reason: %s\n", v.Reason)
	fmt.Printf("  serving arm: %d sessions, alarm rate %.3f; canary arm: %d sessions, alarm rate %.3f\n",
		v.Serving.Sessions, v.Serving.AlarmRate, v.Canary.Sessions, v.Canary.AlarmRate)
	if v.QuarantinedDir != "" {
		fmt.Printf("  quarantined: %s (verdict recorded as %s)\n", v.QuarantinedDir, rollout.VerdictFile)
	}
}
