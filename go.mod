module misusedetect

go 1.24
