// Package misusedetect is a from-scratch Go reproduction of "System
// Misuse Detection via Informed Behavior Clustering and Modeling"
// (Adilova, Natious, Chen, Thonnard, Kamp; DSN 2019, arXiv:1907.00874).
//
// The library models normal behavior in a system's interaction logs and
// flags outlying sessions. Historical sessions are topic-modeled with an
// LDA ensemble, a security expert (simulated in package
// internal/expert, auditable through the visual-interface artifacts of
// package internal/viz) groups the topics into semantically meaningful
// behavior clusters, and each cluster receives a one-class SVM for
// routing plus an LSTM language model over action sequences for
// normality scoring. New sessions are routed to the best-matching
// cluster and scored action by action in real time.
//
// The online path runs on a sharded concurrent scoring engine
// (internal/core.Engine): session IDs are hashed onto N shards, each
// with its own goroutine, session map, and idle-eviction clock, fed
// through bounded channels with explicit backpressure. Scoring reuses
// preallocated tensor scratch buffers, so the steady state allocates
// nothing per action, and a determinism mode makes a sharded replay
// byte-identical to the serial monitor. internal/corpus embeds a fixed
// labeled evaluation corpus the race-enabled test suite replays against
// both paths. See ARCHITECTURE.md for the design.
//
// Scoring is backend-pluggable: the per-cluster sequence model is any
// internal/scorer.Scorer — the paper's LSTM (internal/lm), or the
// streaming n-gram and HMM adapters (internal/baseline) — selected by
// core.Config.Backend and persisted through a backend-tagged
// serialization envelope. A versioned model registry (core.Registry)
// hot-swaps whole model generations behind an atomic pointer with
// in-flight sessions pinned to the generation they started on; the
// misused daemon exposes it as the {"cmd":"reload"} wire command
// (misusectl reload), with the active backend and model version in the
// status counters.
//
// The end-to-end evaluation and load harness (internal/harness) replays
// labeled traffic — the embedded corpus or fresh simulator runs with
// injected misuse — through the serving stack in-process and at the
// wire level against a live daemon, reporting AUC, TPR at an FPR
// budget, precision/recall, and time-to-detection per backend and per
// cluster. It calibrates per-cluster alarm floors from a false-positive
// budget on held-out normal sessions and writes them as a JSON fragment
// the daemon loads with -monitor. `misusectl eval` runs an evaluation
// (add -addr to measure a live daemon; -thresholds to emit the
// calibrated fragment; -min-auc as a CI gate), `misusectl bench`
// measures serving latency percentiles (p50/p95/p99 ingest and
// per-action scoring) and events/sec across backends and shard counts,
// in-process or against a live daemon with -addr.
//
// Entry points:
//
//   - internal/core: the full pipeline (training, scoring, online
//     monitoring, the sharded engine, model persistence)
//   - internal/corpus: the embedded labeled evaluation corpus
//   - internal/harness: end-to-end evaluation and load benching
//   - internal/experiments: regenerates every figure of the paper
//   - cmd/misusectl: command-line interface (including `status` against
//     a running daemon)
//   - cmd/misused: TCP log-ingestion monitoring daemon
//   - examples/: runnable walkthroughs
//
// See DESIGN.md for the system inventory, ARCHITECTURE.md for the
// concurrent scoring engine, and EXPERIMENTS.md for paper-versus-measured
// results.
package misusedetect
