// Package misusedetect is a from-scratch Go reproduction of "System
// Misuse Detection via Informed Behavior Clustering and Modeling"
// (Adilova, Natious, Chen, Thonnard, Kamp; DSN 2019, arXiv:1907.00874).
//
// The library models normal behavior in a system's interaction logs and
// flags outlying sessions. Historical sessions are topic-modeled with an
// LDA ensemble, a security expert (simulated in package
// internal/expert, auditable through the visual-interface artifacts of
// package internal/viz) groups the topics into semantically meaningful
// behavior clusters, and each cluster receives a one-class SVM for
// routing plus an LSTM language model over action sequences for
// normality scoring. New sessions are routed to the best-matching
// cluster and scored action by action in real time.
//
// The online path runs on a sharded concurrent scoring engine
// (internal/core.Engine): session IDs are hashed onto N shards, each
// with its own goroutine, session map, and idle-eviction clock, fed
// through bounded channels with explicit backpressure. Scoring reuses
// preallocated tensor scratch buffers, so the steady state allocates
// nothing per action, and a determinism mode makes a sharded replay
// byte-identical to the serial monitor. internal/corpus embeds a fixed
// labeled evaluation corpus the race-enabled test suite replays against
// both paths. See ARCHITECTURE.md for the design.
//
// Scoring is backend-pluggable: the per-cluster sequence model is any
// internal/scorer.Scorer — the paper's LSTM (internal/lm), or the
// streaming n-gram and HMM adapters (internal/baseline) — selected by
// core.Config.Backend and persisted through a backend-tagged
// serialization envelope. A versioned model registry (core.Registry)
// hot-swaps whole model generations behind an atomic pointer with
// in-flight sessions pinned to the generation they started on; the
// misused daemon exposes it as the {"cmd":"reload"} wire command
// (misusectl reload), with the active backend and model version in the
// status counters.
//
// The end-to-end evaluation and load harness (internal/harness) replays
// labeled traffic — the embedded corpus or fresh simulator runs with
// injected misuse — through the serving stack in-process and at the
// wire level against a live daemon, reporting AUC, TPR at an FPR
// budget, precision/recall, and time-to-detection per backend and per
// cluster. It calibrates per-cluster alarm floors from a false-positive
// budget on held-out normal sessions and writes them as a JSON fragment
// the daemon loads with -monitor. `misusectl eval` runs an evaluation
// (add -addr to measure a live daemon; -thresholds to emit the
// calibrated fragment; -min-auc as a CI gate), `misusectl bench`
// measures serving latency percentiles (p50/p95/p99 ingest and
// per-action scoring), events/sec, and allocations per event across
// backends, shard counts, and submission batch sizes (-batch), adding
// wire-level rows against a live daemon with -addr; -json emits the
// BENCH_ingest.json report CI archives, and -min-batch-speedup gates
// the wire batch/single throughput ratio.
//
// Ingestion is batched and token-based end to end: the daemon accepts
// {"batch":[...]} frames beside single-event lines, interns each action
// name to an integer token exactly once at the wire edge
// (actionlog.Interner, with a zero-copy fast parse for known names),
// and the engine moves pre-tokenized events through pooled per-shard
// batches — see ARCHITECTURE.md's ingestion section.
//
// The serving stack is self-maintaining: internal/drift runs online
// drift detection over the session summaries the engine emits —
// Page–Hinkley on the smoothed-likelihood mean and a windowed
// two-sample KS test against a reference frozen at model load, per
// behavior cluster and globally, plus an unknown-action-rate test for
// vocabulary drift — and internal/pipeline closes the loop: it buffers
// recent alarm-free sessions as candidate training data and, on a
// drift signal (or misusectl adapt -once), retrains the per-cluster
// models through the core training path (growing the vocabulary with
// recurring new actions, distilling clusters too quiet to retrain from
// their own stale models), recalibrates the per-cluster alarm floors
// from the same FPR budget, guardrail-evaluates the candidate
// generation against the serving one on held-out traffic, and — unless
// the held-out AUC regressed past tolerance — writes a versioned model
// directory and hot-swaps it through the registry. misused -adapt runs
// the loop in the daemon, with {"cmd":"drift"} / {"cmd":"adapt"} wire
// commands behind misusectl drift and misusectl adapt.
//
// Entry points:
//
//   - internal/core: the full pipeline (training, scoring, online
//     monitoring, the sharded engine, model persistence, retraining)
//   - internal/drift, internal/pipeline: online drift detection and
//     the automated retrain/hot-swap adaptation loop
//   - internal/corpus: the embedded labeled evaluation corpus
//   - internal/harness: end-to-end evaluation and load benching
//   - internal/experiments: regenerates every figure of the paper
//   - cmd/misusectl: command-line interface (including `status` against
//     a running daemon)
//   - cmd/misused: TCP log-ingestion monitoring daemon
//   - examples/: runnable walkthroughs
//
// See README.md for the quickstart, ARCHITECTURE.md for the serving
// stack and adaptation loop, and OPERATIONS.md for the operator
// runbook.
package misusedetect
